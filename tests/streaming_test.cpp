#include "skc/coreset/streaming.h"

#include <gtest/gtest.h>

#include "skc/coreset/offline.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

MixtureConfig mixture(int n, int log_delta = 9) {
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = log_delta;
  cfg.clusters = 3;
  cfg.n = n;
  cfg.spread = 0.02;
  cfg.skew = 1.0;
  return cfg;
}

/// Options that make the streaming path information-lossless: sampling
/// rates psi/psi' forced to 1 and sketch capacities large enough to decode
/// everything, so streamed estimates equal exact counts.
StreamingOptions lossless_options(int log_delta, PointIndex n) {
  StreamingOptions opt;
  opt.log_delta = log_delta;
  opt.max_points = n;
  opt.counting_samples = 1e18;  // psi = psi' = 1
  opt.exact_storing = true;     // plain-map reference structures
  return opt;
}

TEST(StreamingCoreset, InsertionOnlyEqualsOffline) {
  Rng rng(1);
  PointSet pts = gaussian_mixture(mixture(700), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);

  const OfflineBuildResult offline = build_offline_coreset(pts, params, 9);
  ASSERT_TRUE(offline.ok);

  StreamingCoresetBuilder builder(2, params, lossless_options(9, pts.size()));
  builder.consume(insertion_stream(pts));
  const StreamingResult streamed = builder.finalize();
  ASSERT_TRUE(streamed.ok);

  EXPECT_DOUBLE_EQ(streamed.coreset.o, offline.coreset.o);
  EXPECT_EQ(testutil::canonical_multiset(streamed.coreset.points),
            testutil::canonical_multiset(offline.coreset.points));
}

TEST(StreamingCoreset, DynamicStreamEqualsOfflineOnSurvivors) {
  Rng rng(2);
  PointSet base = gaussian_mixture(mixture(500), rng);
  PointSet extra = gaussian_mixture(mixture(400), rng);
  Rng srng(3);
  const Stream stream = churn_stream(base, extra, ChurnConfig{}, srng);
  const PointSet survivors = surviving_points(stream, 2);
  ASSERT_EQ(testutil::canonical_multiset(survivors), testutil::canonical_multiset(base));

  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult offline = build_offline_coreset(base, params, 9);
  ASSERT_TRUE(offline.ok);

  StreamingCoresetBuilder builder(2, params, lossless_options(9, base.size() + extra.size()));
  builder.consume(stream);
  EXPECT_EQ(builder.net_count(), base.size());
  const StreamingResult streamed = builder.finalize();
  ASSERT_TRUE(streamed.ok);
  EXPECT_DOUBLE_EQ(streamed.coreset.o, offline.coreset.o);
  EXPECT_EQ(testutil::canonical_multiset(streamed.coreset.points),
            testutil::canonical_multiset(offline.coreset.points));
}

TEST(StreamingCoreset, AdversarialChurnStillMatchesOffline) {
  Rng rng(4);
  PointSet base = gaussian_mixture(mixture(400), rng);
  PointSet extra = gaussian_mixture(mixture(400), rng);
  ChurnConfig churn;
  churn.adversarial = true;
  Rng srng(5);
  const Stream stream = churn_stream(base, extra, churn, srng);

  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult offline = build_offline_coreset(base, params, 9);
  ASSERT_TRUE(offline.ok);

  StreamingCoresetBuilder builder(2, params, lossless_options(9, 800));
  builder.consume(stream);
  const StreamingResult streamed = builder.finalize();
  ASSERT_TRUE(streamed.ok);
  EXPECT_EQ(testutil::canonical_multiset(streamed.coreset.points),
            testutil::canonical_multiset(offline.coreset.points));
}

TEST(StreamingCoreset, SampledRatesStillProduceUsableCoreset) {
  // Realistic (sampled, small-sketch) configuration: the result will not be
  // identical to offline, but must build and approximate the total weight.
  Rng rng(6);
  PointSet pts = gaussian_mixture(mixture(4000, 10), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);

  StreamingOptions opt;
  opt.log_delta = 10;
  opt.max_points = pts.size();
  StreamingCoresetBuilder builder(2, params, opt);
  builder.consume(insertion_stream(pts));
  const StreamingResult streamed = builder.finalize();
  ASSERT_TRUE(streamed.ok);
  EXPECT_GT(streamed.coreset.points.size(), 50);
  EXPECT_NEAR(streamed.coreset.total_weight(), 4000.0, 2000.0);
  EXPECT_TRUE(streamed.coreset.points.integral_weights());
}

TEST(StreamingCoreset, MemorySublinearInStreamLength) {
  // E5's claim: sketch state is bounded by configuration caps, not by n.
  // Feed 4x the data and require far less than 4x the memory (point buckets
  // allocate lazily, so some growth up to the caps is expected).
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingOptions opt;
  opt.log_delta = 10;
  opt.max_points = 1 << 20;

  auto run = [&](int n, std::uint64_t seed) {
    StreamingCoresetBuilder builder(2, params, opt);
    Rng rng(seed);
    builder.consume(insertion_stream(gaussian_mixture(mixture(n, 10), rng)));
    return builder.memory_bytes();
  };
  const std::size_t small = run(3000, 7);
  const std::size_t large = run(12000, 7);
  EXPECT_LT(static_cast<double>(large), 2.0 * static_cast<double>(small));

  StreamingCoresetBuilder builder(2, params, opt);
  EXPECT_GT(builder.memory_bytes_per_guess(), 0u);
  EXPECT_LT(builder.memory_bytes_per_guess(), builder.memory_bytes());
}

TEST(StreamingCoreset, ORangeHintShrinksGuessCount) {
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingOptions full;
  full.log_delta = 10;
  full.max_points = 1 << 16;
  StreamingOptions hinted = full;
  hinted.o_min = 1e5;
  hinted.o_max = 1e7;
  StreamingCoresetBuilder a(2, params, full);
  StreamingCoresetBuilder b(2, params, hinted);
  EXPECT_GT(a.num_guesses(), b.num_guesses());
  EXPECT_LT(b.memory_bytes(), a.memory_bytes());
}

TEST(StreamingCoreset, NetCountTracksInsertMinusDelete) {
  const CoresetParams params = CoresetParams::practical(2, LrOrder{2.0}, 0.3, 0.3);
  StreamingOptions opt;
  opt.log_delta = 6;
  opt.max_points = 100;
  StreamingCoresetBuilder builder(2, params, opt);
  const std::vector<Coord> p = {5, 5};
  builder.insert(p);
  builder.insert(p);
  builder.erase(p);
  EXPECT_EQ(builder.net_count(), 1);
  EXPECT_EQ(builder.events(), 3);
}

TEST(StreamingCoreset, DiagnosticsExplainEveryGuess) {
  Rng rng(8);
  PointSet pts = gaussian_mixture(mixture(600), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingCoresetBuilder builder(2, params, lossless_options(9, pts.size()));
  builder.consume(insertion_stream(pts));
  const StreamingResult result = builder.finalize();
  ASSERT_TRUE(result.ok);
  // Outcomes are recorded up to and including the accepted guess.
  EXPECT_EQ(result.diagnostics.guess_outcomes.back(), "ok");
  EXPECT_EQ(result.diagnostics.guesses_tried.size(),
            result.diagnostics.guess_outcomes.size());
}

TEST(StreamingCoreset, BuildStreamingConvenienceWrapper) {
  Rng rng(9);
  PointSet pts = gaussian_mixture(mixture(500), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  const StreamingResult result = build_streaming_coreset(
      insertion_stream(pts), 2, params, lossless_options(9, pts.size()));
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace skc
