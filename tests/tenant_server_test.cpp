// TenantServer over loopback: version-1 frames from a pre-tenant client must
// keep working unchanged against a multi-tenant server (the wire
// compatibility pin), version-2 frames must namespace every RPC by stream
// id, and every tenant-level refusal — unknown id, malformed prefix, quota —
// must be a typed error frame on a connection that KEEPS serving.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "skc/net/client.h"
#include "skc/net/frame.h"
#include "skc/net/socket.h"
#include "skc/tenant/registry.h"
#include "skc/tenant/server.h"
#include "test_util.h"

namespace skc {
namespace {

using tenant::TenantRegistry;
using tenant::TenantRegistryOptions;
using tenant::TenantServer;

constexpr int kDim = 2;
constexpr int kLogDelta = 9;

TenantRegistryOptions registry_options() {
  TenantRegistryOptions o;
  o.dim = kDim;
  o.params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  o.engine.num_shards = 1;
  o.engine.streaming.log_delta = kLogDelta;
  o.engine.streaming.max_points = 1024;
  o.engine.streaming.exact_storing = true;
  o.engine.streaming.distinct_budget = 1 << 20;
  o.engine.streaming.prune_interval = 0;
  o.pool_threads = 0;
  o.num_rungs = 2;
  o.rung_scale = 4;
  o.min_rung_points = 64;
  return o;
}

struct TenantServerFixture {
  TenantRegistry registry;
  TenantServer server;
  bool started = false;

  explicit TenantServerFixture(
      const TenantRegistryOptions& ropts = registry_options(),
      const net::ServerOptions& sopts = {})
      : registry(ropts), server(registry, sopts) {
    std::string error;
    started = server.start(error);
    EXPECT_TRUE(started) << error;
  }
};

std::vector<Coord> grid_coords(int n, int offset) {
  std::vector<Coord> coords;
  coords.reserve(static_cast<std::size_t>(n) * kDim);
  for (int i = 0; i < n; ++i) {
    const int v = offset + i;
    coords.push_back(static_cast<Coord>(v % 511 + 1));
    coords.push_back(static_cast<Coord>(v / 511 + 1));
  }
  return coords;
}

std::int64_t queried_net_points(net::SkcClient& client) {
  net::QueryRequest req;
  req.summary_only = true;
  net::QueryReply reply;
  EXPECT_TRUE(client.query(req, reply)) << client.last_error();
  EXPECT_TRUE(reply.ok) << reply.error;
  return reply.net_points;
}

// --------------------------------------------------------------------------
// Version-1 compatibility: the PR-6 client, byte for byte.

TEST(TenantServer, Version1ClientServesTheDefaultTenantUnchanged) {
  TenantServerFixture fx;
  ASSERT_TRUE(fx.started);

  // A client that never calls set_tenant emits version-1 frames (pinned
  // byte-stable in frame_test); every pre-tenant RPC must behave as it did
  // against the single-tenant EngineServer.
  net::SkcClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()))
      << client.last_error();
  ASSERT_TRUE(client.ping()) << client.last_error();
  ASSERT_TRUE(client.insert_batch(kDim, grid_coords(30, 0)))
      << client.last_error();
  EXPECT_EQ(queried_net_points(client), 30);

  std::string json;
  ASSERT_TRUE(client.metrics_json(json)) << client.last_error();
  EXPECT_NE(json.find("\"transport\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tenants\":{"), std::string::npos) << json;

  // The traffic landed in the default namespace, nowhere else.
  EXPECT_TRUE(fx.registry.exists(""));
  EXPECT_EQ(fx.registry.tenant_count(), 1);
}

// --------------------------------------------------------------------------
// Version-2 namespacing.

TEST(TenantServer, TenantsAreIsolatedOverTheWire) {
  TenantServerFixture fx;
  ASSERT_TRUE(fx.started);

  net::SkcClient alice, bob;
  alice.set_tenant("alice");
  bob.set_tenant("bob");
  ASSERT_TRUE(alice.connect("127.0.0.1", fx.server.port()));
  ASSERT_TRUE(bob.connect("127.0.0.1", fx.server.port()));

  ASSERT_TRUE(alice.insert_batch(kDim, grid_coords(40, 0)))
      << alice.last_error();
  ASSERT_TRUE(bob.insert_batch(kDim, grid_coords(7, 1000)))
      << bob.last_error();
  // Deletions are namespaced too: bob removes points alice keeps.
  ASSERT_TRUE(bob.delete_batch(kDim, grid_coords(2, 1000)))
      << bob.last_error();

  EXPECT_EQ(queried_net_points(alice), 40);
  EXPECT_EQ(queried_net_points(bob), 5);

  // Per-tenant stats: a namespaced TENANT_STATS reads one tenant, the
  // default address reads the whole registry.
  std::string one;
  ASSERT_TRUE(alice.tenant_stats(one)) << alice.last_error();
  EXPECT_NE(one.find("\"id\":\"alice\""), std::string::npos) << one;
  EXPECT_EQ(one.find("\"per_tenant\""), std::string::npos) << one;

  net::SkcClient admin;
  ASSERT_TRUE(admin.connect("127.0.0.1", fx.server.port()));
  std::string all;
  ASSERT_TRUE(admin.tenant_stats(all)) << admin.last_error();
  EXPECT_NE(all.find("\"per_tenant\""), std::string::npos) << all;
  EXPECT_NE(all.find("\"id\":\"alice\""), std::string::npos) << all;
  EXPECT_NE(all.find("\"id\":\"bob\""), std::string::npos) << all;

  // The Prometheus exposition labels the same traffic per tenant.
  std::string prom;
  ASSERT_TRUE(admin.prometheus_text(prom)) << admin.last_error();
  EXPECT_NE(prom.find("skc_tenant_events_total{tenant=\"alice\"} 40"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("skc_tenant_events_total{tenant=\"bob\"} 9"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find(
                "skc_tenant_op_latency_seconds_count{tenant=\"alice\","
                "op=\"ingest\"} 1"),
            std::string::npos)
      << prom;
}

// --------------------------------------------------------------------------
// Typed refusals keep the connection.

TEST(TenantServer, UnknownTenantIsATypedReplyNotADrop) {
  TenantServerFixture fx;
  ASSERT_TRUE(fx.started);

  net::SkcClient ghost;
  ghost.set_tenant("ghost");
  ASSERT_TRUE(ghost.connect("127.0.0.1", fx.server.port()));

  // Queries never create tenants, so "ghost" is unknown: a typed error.
  net::QueryRequest req;
  net::QueryReply reply;
  EXPECT_FALSE(ghost.query(req, reply));
  EXPECT_EQ(ghost.last_status(), net::Status::kUnknownTenant);

  // The SAME connection keeps serving: ping echoes, and ingest (which
  // auto-creates the namespace) is admitted.
  EXPECT_TRUE(ghost.ping()) << ghost.last_error();
  EXPECT_TRUE(ghost.insert_batch(kDim, grid_coords(3, 0)))
      << ghost.last_error();
  EXPECT_EQ(queried_net_points(ghost), 3);
}

TEST(TenantServer, MalformedTenantPrefixAnswersTypedAndKeepsServing) {
  TenantServerFixture fx;
  ASSERT_TRUE(fx.started);

  std::string error;
  net::Socket sock =
      net::connect_to("127.0.0.1", fx.server.port(), 2000, error);
  ASSERT_TRUE(sock.valid()) << error;

  const auto exchange = [&](const std::string& frame, std::string& payload) {
    EXPECT_EQ(net::send_exact(sock, frame.data(), frame.size(), 2000),
              net::IoResult::kOk);
    char header_buf[net::kFrameHeaderBytes];
    EXPECT_EQ(net::recv_exact(sock, header_buf, sizeof(header_buf), 5000),
              net::IoResult::kOk);
    net::FrameHeader h;
    EXPECT_EQ(net::decode_header(
                  std::string_view(header_buf, sizeof(header_buf)), h),
              net::Status::kOk);
    payload.assign(h.payload_bytes, '\0');
    if (h.payload_bytes > 0) {
      EXPECT_EQ(net::recv_exact(sock, payload.data(), payload.size(), 5000),
                net::IoResult::kOk);
    }
    return h.status;
  };

  // A version-2 frame whose prefix announces more id bytes than the payload
  // holds: structurally unparseable, answered kUnknownTenant — NOT dropped.
  std::string bad =
      net::encode_tenant_frame(net::MsgType::kPing, net::Status::kOk, "", "");
  bad.resize(net::kFrameHeaderBytes + 1);
  bad[net::kFrameHeaderBytes] = static_cast<char>(10);  // 10 id bytes, 0 present
  {
    const std::uint32_t payload_bytes = 1;
    std::memcpy(bad.data() + 8, &payload_bytes, sizeof(payload_bytes));
  }
  std::string payload;
  EXPECT_EQ(exchange(bad, payload), net::Status::kUnknownTenant);

  // An illegal charset in the id: same typed answer, same live connection.
  std::string illegal = net::encode_tenant_frame(
      net::MsgType::kPing, net::Status::kOk, "ab", "x");
  illegal[net::kFrameHeaderBytes + 1] = '/';
  EXPECT_EQ(exchange(illegal, payload), net::Status::kUnknownTenant);

  // The connection survived both: a well-formed v2 ping round-trips.
  const std::string good = net::encode_tenant_frame(
      net::MsgType::kPing, net::Status::kOk, "ok-tenant", "probe");
  EXPECT_EQ(exchange(good, payload), net::Status::kOk);
  EXPECT_EQ(payload, "probe");
}

TEST(TenantServer, QuotaExceededIsTypedAndDoesNotStallNeighbors) {
  TenantRegistryOptions ropts = registry_options();
  ropts.quotas.max_events_per_second = 200.0;
  ropts.quotas.burst_events = 50.0;
  TenantServerFixture fx(ropts);
  ASSERT_TRUE(fx.started);

  net::SkcClient noisy;
  noisy.set_tenant("noisy");
  ASSERT_TRUE(noisy.connect("127.0.0.1", fx.server.port()));

  // The first batch spends the whole burst; the immediate second one is
  // refused with the typed wire error and nothing enqueued.
  ASSERT_TRUE(noisy.insert_batch(kDim, grid_coords(50, 0)))
      << noisy.last_error();
  EXPECT_FALSE(noisy.insert_batch(kDim, grid_coords(50, 50)));
  EXPECT_EQ(noisy.last_status(), net::Status::kQuotaExceeded);

  // The throttled CONNECTION is fine (only the tenant is limited)...
  EXPECT_TRUE(noisy.ping()) << noisy.last_error();
  EXPECT_EQ(queried_net_points(noisy), 50);

  // ...and a neighbor tenant ingests at full speed meanwhile.
  net::SkcClient quiet;
  quiet.set_tenant("quiet");
  ASSERT_TRUE(quiet.connect("127.0.0.1", fx.server.port()));
  ASSERT_TRUE(quiet.insert_batch(kDim, grid_coords(50, 500)))
      << quiet.last_error();
  EXPECT_EQ(queried_net_points(quiet), 50);

  std::string prom;
  ASSERT_TRUE(quiet.prometheus_text(prom)) << quiet.last_error();
  EXPECT_NE(
      prom.find("skc_tenant_quota_rejections_total{tenant=\"noisy\"} 1"),
      std::string::npos)
      << prom;
}

// --------------------------------------------------------------------------
// Namespaced checkpoints and drain.

TEST(TenantServer, CheckpointAndShutdownAreNamespaced) {
  TenantServerFixture fx;
  ASSERT_TRUE(fx.started);

  net::SkcClient alice;
  alice.set_tenant("alice");
  ASSERT_TRUE(alice.connect("127.0.0.1", fx.server.port()));
  ASSERT_TRUE(alice.insert_batch(kDim, grid_coords(25, 0)))
      << alice.last_error();

  const std::string snap =
      std::string(::testing::TempDir()) + "tenant_server_alice.ckpt";
  ASSERT_TRUE(alice.checkpoint(snap)) << alice.last_error();

  // Checkpointing an unknown namespace is the typed error, not a file.
  net::SkcClient ghost;
  ghost.set_tenant("ghost");
  ASSERT_TRUE(ghost.connect("127.0.0.1", fx.server.port()));
  EXPECT_FALSE(ghost.checkpoint(snap + ".ghost"));
  EXPECT_EQ(ghost.last_status(), net::Status::kUnknownTenant);

  // Drain flushes every resident tenant.
  ASSERT_TRUE(alice.shutdown_server()) << alice.last_error();
  fx.server.wait();
  fx.server.stop();
  EXPECT_EQ(fx.registry.stats().per_tenant.at(0).events, 25);
}

}  // namespace
}  // namespace skc
