#include "skc/sketch/distinct.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "skc/geometry/metric.h"

#include "test_util.h"

namespace skc {
namespace {

TEST(DistinctCells, ExactWhenUnderBudget) {
  Rng rng(1);
  HierarchicalGrid grid(2, 8, rng);
  DistinctCells dc(grid, 8, 1024, 7);  // unit cells, big budget: exact
  Rng prng(2);
  PointSet pts = testutil::random_points(2, 256, 200, prng);
  for (PointIndex i = 0; i < pts.size(); ++i) dc.update(pts[i], +1);
  // Distinct unit cells = distinct points.
  std::set<std::vector<Coord>> distinct;
  for (PointIndex i = 0; i < pts.size(); ++i) {
    const auto p = pts[i];
    distinct.insert(std::vector<Coord>(p.begin(), p.end()));
  }
  EXPECT_DOUBLE_EQ(dc.estimate(), static_cast<double>(distinct.size()));
}

TEST(DistinctCells, DeletionRemovesCells) {
  Rng rng(3);
  HierarchicalGrid grid(2, 6, rng);
  DistinctCells dc(grid, 6, 256, 9);
  PointSet p(2);
  p.push_back({3, 3});
  p.push_back({40, 40});
  dc.update(p[0], +1);
  dc.update(p[1], +1);
  EXPECT_DOUBLE_EQ(dc.estimate(), 2.0);
  dc.update(p[1], -1);
  EXPECT_DOUBLE_EQ(dc.estimate(), 1.0);
}

TEST(DistinctCells, SubsamplesOverBudgetWithinTolerance) {
  Rng rng(4);
  HierarchicalGrid grid(2, 12, rng);
  DistinctCells dc(grid, 12, 128, 11);  // small budget forces subsampling
  Rng prng(5);
  // ~4000 distinct unit cells.
  PointSet pts = testutil::random_points(2, 4096, 4000, prng);
  std::set<std::vector<Coord>> distinct;
  for (PointIndex i = 0; i < pts.size(); ++i) {
    dc.update(pts[i], +1);
    const auto p = pts[i];
    distinct.insert(std::vector<Coord>(p.begin(), p.end()));
  }
  const double est = dc.estimate();
  const double truth = static_cast<double>(distinct.size());
  EXPECT_GT(est, 0.4 * truth);
  EXPECT_LT(est, 2.5 * truth);
  EXPECT_LT(dc.memory_bytes(), 64u * 1024u);
}

TEST(OptLowerBound, ZeroForFewCells) {
  Rng rng(6);
  HierarchicalGrid grid(2, 8, rng);
  const std::vector<double> estimates(8, 3.0);  // fewer than 8k + 8 cells
  EXPECT_DOUBLE_EQ(opt_lower_bound_from_cells(grid, 4, LrOrder{2.0}, estimates), 0.0);
}

TEST(OptLowerBound, BelowTrueOptOnMixtures) {
  Rng rng(7);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 4;
  cfg.n = 3000;
  cfg.spread = 0.02;
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  HierarchicalGrid grid(2, 10, rng);
  std::vector<double> estimates;
  for (int level = 0; level < 10; ++level) {
    std::unordered_set<CellKey, CellKeyHash> distinct;
    for (PointIndex i = 0; i < planted.points.size(); ++i) {
      distinct.insert(grid.cell_of(planted.points[i], level));
    }
    estimates.push_back(static_cast<double>(distinct.size()));
  }
  const double bound =
      opt_lower_bound_from_cells(grid, 4, LrOrder{2.0}, estimates);
  // True OPT is at most the planted-center cost.
  const double planted_cost =
      unconstrained_cost(planted.points, planted.centers, LrOrder{2.0});
  EXPECT_LE(bound, planted_cost);
  EXPECT_GT(bound, 0.0);
}

}  // namespace
}  // namespace skc
