// Cluster subsystem (src/skc/cluster/): registry liveness state machine,
// the engine's sketch export/import hooks, and the real thing — coordinator
// + worker processes over loopback TCP, including the kill-a-worker
// failover path the design exists for.
//
// The multi-process tests exec the cluster_harness binary (path injected by
// CMake as SKC_CLUSTER_HARNESS_BIN) and run in exact mode on small streams,
// where the merged cluster state is bit-identical to a single engine fed
// the union — so parity assertions can be tight instead of statistical.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "skc/cluster/coordinator.h"
#include "skc/cluster/process.h"
#include "skc/cluster/registry.h"
#include "skc/coreset/params.h"
#include "skc/coreset/streaming.h"
#include "skc/engine/engine.h"
#include "skc/net/client.h"
#include "skc/stream/events.h"

namespace skc::cluster {
namespace {

constexpr int kDim = 2;
constexpr int kK = 4;
constexpr int kLogDelta = 6;

// The configuration the harness defaults to (plus --exact): both sides of
// the WORKER_HELLO handshake must derive the same fingerprint from it.
CoresetParams cluster_params() {
  return CoresetParams::practical(kK, LrOrder{2.0}, 0.3, 0.3);
}

StreamingOptions cluster_streaming(bool exact) {
  StreamingOptions opt;
  opt.log_delta = kLogDelta;
  opt.exact_storing = exact;
  return opt;
}

CoordinatorOptions coordinator_options(const std::vector<WorkerProcess*>& ws,
                                       bool exact) {
  CoordinatorOptions copts;
  copts.dim = kDim;
  copts.params = cluster_params();
  copts.streaming = cluster_streaming(exact);
  for (const WorkerProcess* w : ws) {
    copts.workers.push_back({"127.0.0.1", w->port()});
  }
  return copts;
}

bool spawn_worker(WorkerProcess& w, std::vector<std::string> extra = {}) {
  WorkerProcessOptions opt;
  opt.binary = SKC_CLUSTER_HARNESS_BIN;
  opt.args = {"worker", "--exact"};
  for (std::string& a : extra) opt.args.push_back(std::move(a));
  return w.spawn(opt);
}

// Deterministic dynamic stream over [1, 2^kLogDelta]^2: `n` inserts around
// four well-separated sites, then every fourth point deleted again.
Stream small_stream(int n, std::uint64_t salt) {
  static const Coord sites[4][2] = {{8, 8}, {8, 56}, {56, 8}, {56, 56}};
  Stream s;
  std::vector<Point> alive;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t h = (static_cast<std::uint64_t>(i) + 1) * 0x9e3779b97f4a7c15ull + salt;
    const auto& site = sites[h % 4];
    Point p = {static_cast<Coord>(site[0] + static_cast<Coord>(h >> 8 & 7)),
               static_cast<Coord>(site[1] + static_cast<Coord>(h >> 16 & 7))};
    s.push_back({StreamOp::kInsert, p});
    alive.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < alive.size(); i += 4) {
    s.push_back({StreamOp::kDelete, alive[i]});
  }
  return s;
}

std::int64_t net_count_of(const Stream& s) {
  std::int64_t n = 0;
  for (const StreamEvent& e : s) n += e.op == StreamOp::kInsert ? 1 : -1;
  return n;
}

// Reference run: one in-process engine, identical configuration, fed the
// same stream.  In exact mode its merged state equals the cluster's.
EngineQueryResult reference_query(const Stream& s) {
  EngineOptions opts;
  opts.num_shards = 2;
  opts.streaming = cluster_streaming(true);
  ClusteringEngine engine(kDim, cluster_params(), opts);
  engine.submit(s);
  const EngineQueryResult r = engine.query({});
  engine.shutdown();
  return r;
}

// ---------------------------------------------------------------------------
// WorkerRegistry

TEST(ClusterRegistry, LifecycleAndLiveness) {
  WorkerRegistry reg;
  reg.add(0, "127.0.0.1:1000");
  reg.add(1, "127.0.0.1:1001");
  EXPECT_EQ(reg.size(), 2);
  EXPECT_EQ(reg.alive_count(), 0);  // kConnecting is not alive
  EXPECT_FALSE(reg.alive(0));

  reg.mark_alive(0, /*backlog=*/3, /*net_points=*/10, /*events_applied=*/12);
  EXPECT_TRUE(reg.alive(0));
  EXPECT_EQ(reg.alive_count(), 1);
  const WorkerStatus st = reg.status(0);
  EXPECT_EQ(st.state, WorkerState::kAlive);
  EXPECT_EQ(st.backlog, 3);
  EXPECT_EQ(st.net_points, 10);
  EXPECT_EQ(st.events_applied, 12);
  EXPECT_EQ(st.heartbeats, 1);
  EXPECT_EQ(st.address, "127.0.0.1:1000");
}

TEST(ClusterRegistry, MissedHeartbeatsCrossTheLimitExactlyOnce) {
  WorkerRegistry reg;
  reg.add(0, "w0");
  reg.mark_alive(0, 0, 0, 0);
  EXPECT_FALSE(reg.mark_missed(0, /*miss_limit=*/3));
  EXPECT_FALSE(reg.mark_missed(0, 3));
  EXPECT_TRUE(reg.mark_missed(0, 3));   // third consecutive miss crosses
  EXPECT_FALSE(reg.mark_missed(0, 3));  // already past: do not re-trigger
  // A successful probe resets the counter.
  reg.mark_alive(0, 0, 0, 0);
  EXPECT_EQ(reg.status(0).consecutive_misses, 0);
  EXPECT_FALSE(reg.mark_missed(0, 3));
}

TEST(ClusterRegistry, FirstFailoverClaimantWinsAndDeadStaysDead) {
  WorkerRegistry reg;
  reg.add(0, "w0");
  reg.mark_alive(0, 0, 0, 0);
  EXPECT_TRUE(reg.mark_dead(0));   // heartbeat thread claims...
  EXPECT_FALSE(reg.mark_dead(0));  // ...the failed-forward path loses
  EXPECT_FALSE(reg.alive(0));
  // A stale probe success must not resurrect a failed-over member.
  reg.mark_alive(0, 0, 99, 99);
  EXPECT_FALSE(reg.alive(0));
  EXPECT_EQ(reg.status(0).state, WorkerState::kDead);
  // Misses on a dead worker never re-trigger failover.
  EXPECT_FALSE(reg.mark_missed(0, 1));
}

TEST(ClusterRegistry, PickSurvivorSkipsDeadAndExcluded) {
  WorkerRegistry reg;
  for (int i = 0; i < 3; ++i) {
    reg.add(i, "w");
    reg.mark_alive(i, 0, 0, 0);
  }
  EXPECT_EQ(reg.pick_survivor(/*excluding=*/0), 1);
  reg.mark_dead(1);
  EXPECT_EQ(reg.pick_survivor(0), 2);
  reg.mark_dead(2);
  EXPECT_EQ(reg.pick_survivor(0), -1);  // nobody left but the excluded one
  EXPECT_EQ(reg.pick_survivor(3), 0);
}

TEST(ClusterRegistry, ProgressCountersAccumulate) {
  WorkerRegistry reg;
  reg.add(0, "w0");
  reg.record_forwarded(0, /*events=*/40, /*replay_depth=*/40);
  reg.record_forwarded(0, 10, 50);
  reg.record_snapshot(0, /*snapshot_events=*/50);
  reg.record_failover_absorbed(0);
  const WorkerStatus st = reg.status(0);
  EXPECT_EQ(st.events_forwarded, 50);
  EXPECT_EQ(st.replay_depth, 0);  // snapshot resets the buffered tail
  EXPECT_EQ(st.snapshots, 1);
  EXPECT_EQ(st.snapshot_events, 50);
  EXPECT_EQ(st.failovers_absorbed, 1);
}

// ---------------------------------------------------------------------------
// Engine sketch export/import (the primitives kMergeSketch/kShipSnapshot
// ride on)

TEST(ClusterSketch, ImportFoldsAPeerEngineState) {
  const Stream a = small_stream(80, 1);
  const Stream b = small_stream(60, 2);

  EngineOptions opts;
  opts.num_shards = 2;
  opts.streaming = cluster_streaming(true);
  ClusteringEngine ea(kDim, cluster_params(), opts);
  ClusteringEngine eb(kDim, cluster_params(), opts);
  ea.submit(a);
  eb.submit(b);
  ea.flush();
  eb.flush();

  EngineSketchExport exp = ea.export_sketch();
  EXPECT_EQ(exp.net_points, net_count_of(a));
  EXPECT_EQ(exp.events_applied, static_cast<std::int64_t>(a.size()));
  ASSERT_TRUE(eb.import_sketch(exp.blob));
  EXPECT_EQ(eb.net_count(), net_count_of(a) + net_count_of(b));

  // The adopted state must be queryable, and equal a single engine fed the
  // concatenation (exact mode: the linear merge is bit-identical).
  const EngineQueryResult got = eb.query({});
  ASSERT_TRUE(got.ok) << got.error;
  Stream both = a;
  both.insert(both.end(), b.begin(), b.end());
  const EngineQueryResult want = reference_query(both);
  ASSERT_TRUE(want.ok) << want.error;
  EXPECT_EQ(got.net_points, want.net_points);
  EXPECT_EQ(got.summary.points.size(), want.summary.points.size());
  EXPECT_DOUBLE_EQ(got.solution.cost, want.solution.cost);
  ea.shutdown();
  eb.shutdown();
}

TEST(ClusterSketch, ImportRejectsMismatchedConfiguration) {
  EngineOptions opts;
  opts.streaming = cluster_streaming(true);
  CoresetParams other = cluster_params();
  other.seed += 1;  // different hash seeds -> incompatible sketches
  ClusteringEngine ea(kDim, other, opts);
  ClusteringEngine eb(kDim, cluster_params(), opts);
  std::vector<Coord> p = {5, 5};
  ea.insert(p);
  eb.insert(p);
  ea.flush();
  eb.flush();
  EXPECT_FALSE(eb.import_sketch(ea.export_sketch().blob));
  EXPECT_EQ(eb.net_count(), 1) << "a refused import must leave state intact";
  ea.shutdown();
  eb.shutdown();
}

TEST(ClusterSketch, FingerprintPinsEverySketchShapingKnob) {
  const CoresetParams params = cluster_params();
  const StreamingOptions streaming = cluster_streaming(false);
  const std::uint64_t base =
      engine_config_fingerprint(kDim, params, streaming);
  EXPECT_EQ(base, engine_config_fingerprint(kDim, params, streaming));

  EXPECT_NE(base, engine_config_fingerprint(kDim + 1, params, streaming));
  CoresetParams p2 = params;
  p2.seed += 1;
  EXPECT_NE(base, engine_config_fingerprint(kDim, p2, streaming));
  StreamingOptions s2 = streaming;
  s2.log_delta += 1;
  EXPECT_NE(base, engine_config_fingerprint(kDim, params, s2));
  s2 = streaming;
  s2.exact_storing = true;
  EXPECT_NE(base, engine_config_fingerprint(kDim, params, s2));
}

// ---------------------------------------------------------------------------
// Multi-process: coordinator + cluster_harness workers over loopback TCP

TEST(Cluster, TwoWorkerIngestAndQueryMatchSingleEngine) {
  WorkerProcess w0, w1;
  ASSERT_TRUE(spawn_worker(w0)) << w0.error();
  ASSERT_TRUE(spawn_worker(w1)) << w1.error();

  ClusterCoordinator coord(coordinator_options({&w0, &w1}, /*exact=*/true));
  std::string error;
  ASSERT_TRUE(coord.connect(error)) << error;
  EXPECT_EQ(coord.workers(), 2);

  const Stream stream = small_stream(160, 7);
  ASSERT_TRUE(coord.submit(stream));
  coord.flush();

  const EngineQueryResult got = coord.query({});
  ASSERT_TRUE(got.ok) << got.error;
  const EngineQueryResult want = reference_query(stream);
  ASSERT_TRUE(want.ok) << want.error;
  EXPECT_EQ(got.net_points, net_count_of(stream));
  EXPECT_EQ(got.net_points, want.net_points);
  EXPECT_EQ(got.summary.points.size(), want.summary.points.size());
  EXPECT_DOUBLE_EQ(got.solution.cost, want.solution.cost);
  EXPECT_EQ(got.solution.centers.size(),
            static_cast<std::size_t>(want.solution.centers.size()));

  const ClusterMetrics m = coord.metrics();
  EXPECT_EQ(m.workers, 2);
  EXPECT_EQ(m.workers_alive, 2);
  EXPECT_EQ(m.events_forwarded, static_cast<std::int64_t>(stream.size()));
  EXPECT_EQ(m.queries, 1);
  EXPECT_GT(m.ingest_bytes, 0);
  EXPECT_GT(m.protocol_bytes, 0);
  // Both workers saw traffic (the router spreads four well-separated sites).
  ASSERT_EQ(m.worker_ingest_bytes.size(), 2u);
  EXPECT_GT(m.worker_ingest_bytes[0], 0);
  EXPECT_GT(m.worker_ingest_bytes[1], 0);

  coord.shutdown_workers();
  EXPECT_EQ(w0.wait(), 0);
  EXPECT_EQ(w1.wait(), 0);
}

TEST(Cluster, ComposeModeUnionsFinalizedCoresets) {
  WorkerProcess w0, w1;
  ASSERT_TRUE(spawn_worker(w0)) << w0.error();
  ASSERT_TRUE(spawn_worker(w1)) << w1.error();

  CoordinatorOptions copts = coordinator_options({&w0, &w1}, /*exact=*/true);
  copts.merge_mode = MergeMode::kCompose;
  ClusterCoordinator coord(copts);
  std::string error;
  ASSERT_TRUE(coord.connect(error)) << error;

  const Stream stream = small_stream(120, 9);
  ASSERT_TRUE(coord.submit(stream));
  coord.flush();
  const EngineQueryResult got = coord.query({});
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.net_points, net_count_of(stream));
  EXPECT_GT(got.summary.points.size(), 0u);
  EXPECT_FALSE(got.solution.centers.empty());
  coord.shutdown_workers();
}

TEST(Cluster, HandshakeRefusesAMisconfiguredWorker) {
  WorkerProcess good, bad;
  ASSERT_TRUE(spawn_worker(good)) << good.error();
  // Different hash seed -> different fingerprint -> must be refused before
  // any sketch crosses the wire.
  ASSERT_TRUE(spawn_worker(bad, {"--seed", "999"})) << bad.error();

  ClusterCoordinator coord(coordinator_options({&good, &bad}, /*exact=*/true));
  std::string error;
  EXPECT_FALSE(coord.connect(error));
  EXPECT_NE(error.find("refused"), std::string::npos) << error;
  good.kill_hard();
  bad.kill_hard();
}

TEST(Cluster, FrontDoorServesTheEngineWireProtocol) {
  WorkerProcess w0, w1;
  ASSERT_TRUE(spawn_worker(w0)) << w0.error();
  ASSERT_TRUE(spawn_worker(w1)) << w1.error();

  ClusterCoordinator coord(coordinator_options({&w0, &w1}, /*exact=*/true));
  std::string error;
  ASSERT_TRUE(coord.connect(error)) << error;
  ASSERT_TRUE(coord.start(error)) << error;

  net::SkcClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", coord.port()));
  EXPECT_TRUE(client.ping());

  const Stream stream = small_stream(100, 3);
  std::vector<Coord> inserts, deletes;
  for (const StreamEvent& e : stream) {
    auto& dst = e.op == StreamOp::kInsert ? inserts : deletes;
    dst.insert(dst.end(), e.point.begin(), e.point.end());
  }
  net::BatchReply ack;
  ASSERT_TRUE(client.insert_batch(kDim, inserts, &ack));
  EXPECT_EQ(ack.accepted, inserts.size() / kDim);
  ASSERT_TRUE(client.delete_batch(kDim, deletes, &ack));

  net::QueryRequest qreq;
  net::QueryReply qrep;
  ASSERT_TRUE(client.query(qreq, qrep));
  ASSERT_TRUE(qrep.ok) << qrep.error;
  EXPECT_EQ(qrep.net_points, net_count_of(stream));
  EXPECT_EQ(qrep.dim, kDim);
  EXPECT_FALSE(qrep.center_coords.empty());

  std::string json;
  ASSERT_TRUE(client.metrics_json(json));
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"events_forwarded\""), std::string::npos);

  std::string prom;
  ASSERT_TRUE(client.prometheus_text(prom));
  EXPECT_NE(prom.find("skc_cluster_workers 2"), std::string::npos);
  EXPECT_NE(prom.find("worker=\"1\""), std::string::npos);
  EXPECT_NE(prom.find("ledger=\"ingest\""), std::string::npos);

  client.close();
  coord.stop();
  coord.shutdown_workers();
}

// The satellite: SIGKILL a worker mid-stream; the coordinator must detect
// the missed heartbeats, ship the member checkpoint + replay tail to a
// survivor, and keep answering queries over the full dataset.
TEST(Cluster, KillOneWorkerFailsOverWithoutLosingState) {
  WorkerProcess w0, w1, w2;
  ASSERT_TRUE(spawn_worker(w0)) << w0.error();
  ASSERT_TRUE(spawn_worker(w1)) << w1.error();
  ASSERT_TRUE(spawn_worker(w2)) << w2.error();

  CoordinatorOptions copts =
      coordinator_options({&w0, &w1, &w2}, /*exact=*/true);
  copts.heartbeat_interval_ms = 50;
  copts.heartbeat_miss_limit = 2;
  ClusterCoordinator coord(copts);
  std::string error;
  ASSERT_TRUE(coord.connect(error)) << error;

  const Stream stream = small_stream(180, 13);
  const std::size_t half = stream.size() / 2;
  ASSERT_TRUE(coord.submit(Stream(stream.begin(),
                                  stream.begin() + static_cast<long>(half))));
  coord.flush();
  // Member checkpoints cover the first half; the second half lands in the
  // replay buffers until the next refresh.
  ASSERT_TRUE(coord.checkpoint_members());
  ASSERT_TRUE(coord.submit(Stream(stream.begin() + static_cast<long>(half),
                                  stream.end())));
  coord.flush();

  w1.kill_hard();
  // Wait for heartbeat-driven detection + failover (50ms probes, 2 misses).
  bool failed_over = false;
  for (int i = 0; i < 200 && !failed_over; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    failed_over = coord.metrics().failovers >= 1;
  }
  ASSERT_TRUE(failed_over) << "failover not detected within 5s";

  const ClusterMetrics m = coord.metrics();
  EXPECT_EQ(m.workers_alive, 2);
  EXPECT_GT(m.replayed_events, 0) << "the post-checkpoint tail must replay";

  // The cluster keeps ingesting and still owns every surviving point.
  std::vector<Coord> extra = {30, 30};
  ASSERT_TRUE(coord.insert(extra));
  coord.flush();
  const EngineQueryResult got = coord.query({});
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.net_points, net_count_of(stream) + 1);

  // Cost parity with a never-failed run: exact mode makes snapshot+replay
  // reconstruction lossless, so the merged coreset — and the seeded solver
  // on it — must match a single engine fed the same stream.
  Stream full = stream;
  full.push_back({StreamOp::kInsert, {30, 30}});
  const EngineQueryResult want = reference_query(full);
  ASSERT_TRUE(want.ok) << want.error;
  EXPECT_EQ(got.net_points, want.net_points);
  EXPECT_EQ(got.summary.points.size(), want.summary.points.size());
  EXPECT_NEAR(got.solution.cost, want.solution.cost,
              1e-9 * (1.0 + want.solution.cost));

  coord.shutdown_workers();
}

TEST(ClusterProcess, SpawnReportsPortAndKillIsObservable) {
  WorkerProcess w;
  ASSERT_TRUE(spawn_worker(w)) << w.error();
  EXPECT_GT(w.port(), 0);
  EXPECT_TRUE(w.running());
  w.kill_hard();
  EXPECT_NE(w.wait(), 0);  // died by signal, not a clean exit
  EXPECT_FALSE(w.running());
}

TEST(ClusterProcess, SpawnFailsCleanlyOnABadBinary) {
  WorkerProcess w;
  WorkerProcessOptions opt;
  opt.binary = "/nonexistent/skc-no-such-binary";
  opt.args = {"worker"};
  opt.start_timeout_ms = 2000;
  EXPECT_FALSE(w.spawn(opt));
  EXPECT_FALSE(w.error().empty());
}

}  // namespace
}  // namespace skc::cluster
