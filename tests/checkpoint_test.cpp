// Checkpoint/restore of the streaming builder: feed half a stream, save,
// restore into a fresh builder, feed the rest — the result must equal an
// uninterrupted run exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "skc/coreset/streaming.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

MixtureConfig mixture(int n) {
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 9;
  cfg.clusters = 3;
  cfg.n = n;
  cfg.spread = 0.02;
  cfg.skew = 1.0;
  return cfg;
}

StreamingOptions options() {
  StreamingOptions opt;
  opt.log_delta = 9;
  opt.max_points = 4000;
  return opt;
}

TEST(Checkpoint, ResumeEqualsUninterruptedRun) {
  Rng rng(1);
  PointSet base = gaussian_mixture(mixture(1200), rng);
  PointSet extra = gaussian_mixture(mixture(600), rng);
  Rng srng(2);
  const Stream stream = churn_stream(base, extra, ChurnConfig{}, srng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);

  // Uninterrupted reference.
  StreamingCoresetBuilder reference(2, params, options());
  reference.consume(stream);
  const StreamingResult want = reference.finalize();
  ASSERT_TRUE(want.ok);

  // Interrupted run: half the stream, checkpoint, restore, rest.
  StreamingCoresetBuilder first(2, params, options());
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    first.update(stream[i].point, stream[i].op == StreamOp::kInsert ? +1 : -1);
  }
  std::stringstream checkpoint;
  first.save(checkpoint);

  StreamingCoresetBuilder second(2, params, options());
  ASSERT_TRUE(second.load(checkpoint));
  EXPECT_EQ(second.net_count(), first.net_count());
  EXPECT_EQ(second.events(), first.events());
  for (std::size_t i = half; i < stream.size(); ++i) {
    second.update(stream[i].point, stream[i].op == StreamOp::kInsert ? +1 : -1);
  }
  const StreamingResult got = second.finalize();
  ASSERT_TRUE(got.ok);
  EXPECT_DOUBLE_EQ(got.coreset.o, want.coreset.o);
  EXPECT_EQ(testutil::canonical_multiset(got.coreset.points),
            testutil::canonical_multiset(want.coreset.points));
}

TEST(Checkpoint, RejectsMismatchedConfiguration) {
  Rng rng(3);
  PointSet pts = gaussian_mixture(mixture(300), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingCoresetBuilder builder(2, params, options());
  builder.consume(insertion_stream(pts));
  std::stringstream checkpoint;
  builder.save(checkpoint);

  // Different seed: fingerprint mismatch.
  CoresetParams other = params;
  other.seed = params.seed + 1;
  StreamingCoresetBuilder wrong(2, other, options());
  EXPECT_FALSE(wrong.load(checkpoint));
}

TEST(Checkpoint, RejectsTruncation) {
  Rng rng(4);
  PointSet pts = gaussian_mixture(mixture(300), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingCoresetBuilder builder(2, params, options());
  builder.consume(insertion_stream(pts));
  std::stringstream checkpoint;
  builder.save(checkpoint);
  std::string blob = checkpoint.str();
  blob.resize(blob.size() / 2);
  std::stringstream truncated(blob);
  StreamingCoresetBuilder fresh(2, params, options());
  EXPECT_FALSE(fresh.load(truncated));
}

TEST(Checkpoint, ExactModeRoundTripsToo) {
  Rng rng(5);
  PointSet pts = gaussian_mixture(mixture(500), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingOptions opt = options();
  opt.exact_storing = true;
  StreamingCoresetBuilder builder(2, params, opt);
  builder.consume(insertion_stream(pts));
  std::stringstream checkpoint;
  builder.save(checkpoint);

  StreamingCoresetBuilder restored(2, params, opt);
  ASSERT_TRUE(restored.load(checkpoint));
  const StreamingResult a = builder.finalize();
  const StreamingResult b = restored.finalize();
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(testutil::canonical_multiset(a.coreset.points),
            testutil::canonical_multiset(b.coreset.points));
}

}  // namespace
}  // namespace skc
