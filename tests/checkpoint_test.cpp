// Checkpoint/restore of the streaming builder: feed half a stream, save,
// restore into a fresh builder, feed the rest — the result must equal an
// uninterrupted run exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "skc/coreset/streaming.h"
#include "skc/engine/engine.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

MixtureConfig mixture(int n) {
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 9;
  cfg.clusters = 3;
  cfg.n = n;
  cfg.spread = 0.02;
  cfg.skew = 1.0;
  return cfg;
}

StreamingOptions options() {
  StreamingOptions opt;
  opt.log_delta = 9;
  opt.max_points = 4000;
  return opt;
}

TEST(Checkpoint, ResumeEqualsUninterruptedRun) {
  Rng rng(1);
  PointSet base = gaussian_mixture(mixture(1200), rng);
  PointSet extra = gaussian_mixture(mixture(600), rng);
  Rng srng(2);
  const Stream stream = churn_stream(base, extra, ChurnConfig{}, srng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);

  // Uninterrupted reference.
  StreamingCoresetBuilder reference(2, params, options());
  reference.consume(stream);
  const StreamingResult want = reference.finalize();
  ASSERT_TRUE(want.ok);

  // Interrupted run: half the stream, checkpoint, restore, rest.
  StreamingCoresetBuilder first(2, params, options());
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    first.update(stream[i].point, stream[i].op == StreamOp::kInsert ? +1 : -1);
  }
  std::stringstream checkpoint;
  first.save(checkpoint);

  StreamingCoresetBuilder second(2, params, options());
  ASSERT_TRUE(second.load(checkpoint));
  EXPECT_EQ(second.net_count(), first.net_count());
  EXPECT_EQ(second.events(), first.events());
  for (std::size_t i = half; i < stream.size(); ++i) {
    second.update(stream[i].point, stream[i].op == StreamOp::kInsert ? +1 : -1);
  }
  const StreamingResult got = second.finalize();
  ASSERT_TRUE(got.ok);
  EXPECT_DOUBLE_EQ(got.coreset.o, want.coreset.o);
  EXPECT_EQ(testutil::canonical_multiset(got.coreset.points),
            testutil::canonical_multiset(want.coreset.points));
}

TEST(Checkpoint, RejectsMismatchedConfiguration) {
  Rng rng(3);
  PointSet pts = gaussian_mixture(mixture(300), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingCoresetBuilder builder(2, params, options());
  builder.consume(insertion_stream(pts));
  std::stringstream checkpoint;
  builder.save(checkpoint);

  // Different seed: fingerprint mismatch.
  CoresetParams other = params;
  other.seed = params.seed + 1;
  StreamingCoresetBuilder wrong(2, other, options());
  EXPECT_FALSE(wrong.load(checkpoint));
}

TEST(Checkpoint, RejectsTruncation) {
  Rng rng(4);
  PointSet pts = gaussian_mixture(mixture(300), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingCoresetBuilder builder(2, params, options());
  builder.consume(insertion_stream(pts));
  std::stringstream checkpoint;
  builder.save(checkpoint);
  std::string blob = checkpoint.str();
  blob.resize(blob.size() / 2);
  std::stringstream truncated(blob);
  StreamingCoresetBuilder fresh(2, params, options());
  EXPECT_FALSE(fresh.load(truncated));
}

// ---------------------------------------------------------------------------
// Engine-level snapshots: version 2 wraps the whole body (shard builder
// saves, STRM2 store-pool sections included) in a size + CRC-64 frame, so
// ANY truncation or bit flip must be a clean `false` — never a partial load,
// never UB (the tier-1 suite runs under sanitizers).

EngineOptions engine_options() {
  EngineOptions opt;
  opt.num_shards = 2;
  opt.worker_threads = 0;
  opt.streaming = options();
  return opt;
}

std::string engine_snapshot(ClusteringEngine& engine, int n) {
  Rng rng(7);
  PointSet pts = gaussian_mixture(mixture(n), rng);
  engine.submit(insertion_stream(pts));
  engine.flush();
  std::stringstream out;
  EXPECT_TRUE(engine.save_state(out));
  return out.str();
}

TEST(Checkpoint, EngineStateRoundTripsThroughTheCrcFrame) {
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  ClusteringEngine engine(2, params, engine_options());
  const std::string blob = engine_snapshot(engine, 400);

  ClusteringEngine restored(2, params, engine_options());
  std::istringstream in(blob);
  ASSERT_TRUE(restored.load_state(in));
  EXPECT_EQ(restored.net_count(), engine.net_count());
  EngineQuery q;
  q.summary_only = true;
  const EngineQueryResult a = engine.query(q);
  const EngineQueryResult b = restored.query(q);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(testutil::canonical_multiset(a.summary.points),
            testutil::canonical_multiset(b.summary.points));
  engine.shutdown();
  restored.shutdown();
}

TEST(Checkpoint, EngineStateRejectsEveryTruncationAndBitFlip) {
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  ClusteringEngine engine(2, params, engine_options());
  const std::string blob = engine_snapshot(engine, 400);
  engine.shutdown();
  ASSERT_GT(blob.size(), 64u);

  const auto rejects = [&params](const std::string& bytes) {
    ClusteringEngine fresh(2, params, engine_options());
    std::istringstream in(bytes);
    const bool loaded = fresh.load_state(in);
    fresh.shutdown();
    return !loaded;
  };

  // Truncation sweep: inside the magic, the version, the size/CRC fields,
  // and at several cuts through the payload (which holds the shard
  // builders' STRM2 store-pool sections).
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, std::size_t{11}, std::size_t{20},
        std::size_t{27}, blob.size() / 4, blob.size() / 2, blob.size() - 1}) {
    EXPECT_TRUE(rejects(blob.substr(0, keep))) << "keep=" << keep;
  }

  // Bit-flip sweep: every prologue byte (magic/version/size/CRC) plus 32
  // evenly spaced offsets through the CRC-covered payload.
  const std::size_t payload_bytes = blob.size() - 28;
  const std::size_t step = payload_bytes > 32 ? payload_bytes / 32 : 1;
  for (std::size_t at = 0; at < blob.size();
       at = at < 28 ? at + 1 : at + step) {
    std::string bad = blob;
    bad[at] = static_cast<char>(bad[at] ^ 0x01);
    EXPECT_TRUE(rejects(bad)) << "flip at " << at;
  }

  // An announced size far past the actual stream must fail on the short
  // read, not allocate or scan unbounded memory.
  {
    std::string bad = blob;
    const std::uint64_t huge = ~std::uint64_t{0} / 2;
    std::memcpy(bad.data() + 12, &huge, sizeof(huge));
    EXPECT_TRUE(rejects(bad));
  }

  // The untouched blob still loads: the sweeps rejected corruption, not
  // the format.
  EXPECT_FALSE(rejects(blob));
}

TEST(Checkpoint, ExactModeRoundTripsToo) {
  Rng rng(5);
  PointSet pts = gaussian_mixture(mixture(500), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingOptions opt = options();
  opt.exact_storing = true;
  StreamingCoresetBuilder builder(2, params, opt);
  builder.consume(insertion_stream(pts));
  std::stringstream checkpoint;
  builder.save(checkpoint);

  StreamingCoresetBuilder restored(2, params, opt);
  ASSERT_TRUE(restored.load(checkpoint));
  const StreamingResult a = builder.finalize();
  const StreamingResult b = restored.finalize();
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(testutil::canonical_multiset(a.coreset.points),
            testutil::canonical_multiset(b.coreset.points));
}

}  // namespace
}  // namespace skc
