// Wire protocol (src/skc/net/frame.h): every header field is validated,
// every payload decoder is strict (truncation, impossible sizes, trailing
// garbage all rejected), and a hostile length prefix can never provoke an
// allocation larger than the bytes actually present — the properties the
// server relies on to survive arbitrary peers.
#include "skc/net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>

namespace skc::net {
namespace {

FrameHeader decode_ok(std::string_view bytes) {
  FrameHeader h;
  EXPECT_EQ(decode_header(bytes, h), Status::kOk);
  return h;
}

TEST(Frame, HeaderRoundTripsEveryTypeAndStatus) {
  for (int t = 0; t < kNumMsgTypes; ++t) {
    for (int s = 0; s <= static_cast<int>(Status::kShuttingDown); ++s) {
      const std::string payload(static_cast<std::size_t>(t) * 3, 'x');
      const std::string frame =
          encode_frame(static_cast<MsgType>(t), static_cast<Status>(s), payload);
      ASSERT_EQ(frame.size(), frame_wire_bytes(payload.size()));
      const FrameHeader h = decode_ok(frame);
      EXPECT_EQ(h.type, static_cast<MsgType>(t));
      EXPECT_EQ(h.status, static_cast<Status>(s));
      EXPECT_EQ(h.payload_bytes, payload.size());
      EXPECT_EQ(frame.substr(kFrameHeaderBytes), payload);
    }
  }
}

TEST(Frame, WireBytesMatchesEncoderOutput) {
  // frame_wire_bytes is the contract dist/Network::send accounts with; it
  // must equal what the encoder actually emits at every payload size.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{12},
                              std::size_t{4096}}) {
    const std::string body(n, 'p');
    EXPECT_EQ(encode_frame(MsgType::kQuery, Status::kOk, body).size(),
              frame_wire_bytes(n));
  }
}

TEST(Frame, TruncatedHeaderIsMalformed) {
  const std::string frame = encode_frame(MsgType::kPing, Status::kOk, "abc");
  FrameHeader h;
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    EXPECT_EQ(decode_header(std::string_view(frame).substr(0, len), h),
              Status::kMalformed)
        << "header prefix of " << len << " bytes";
  }
}

TEST(Frame, BadMagicIsMalformed) {
  std::string frame = encode_frame(MsgType::kPing, Status::kOk, "");
  frame[0] = 'X';
  FrameHeader h;
  EXPECT_EQ(decode_header(frame, h), Status::kMalformed);
}

TEST(Frame, UnknownVersionAndTypeAreUnsupported) {
  std::string frame = encode_frame(MsgType::kPing, Status::kOk, "");
  frame[4] = static_cast<char>(kWireVersion + 1);  // version byte
  FrameHeader h;
  EXPECT_EQ(decode_header(frame, h), Status::kUnsupported);

  frame = encode_frame(MsgType::kPing, Status::kOk, "");
  frame[5] = static_cast<char>(kNumMsgTypes);  // first invalid type
  EXPECT_EQ(decode_header(frame, h), Status::kUnsupported);
}

TEST(Frame, InvalidStatusIsMalformed) {
  std::string frame = encode_frame(MsgType::kPing, Status::kOk, "");
  frame[6] = static_cast<char>(0x7f);  // status low byte, way out of range
  FrameHeader h;
  EXPECT_EQ(decode_header(frame, h), Status::kMalformed);
}

TEST(Frame, OverLimitPayloadLengthIsTooLarge) {
  std::string frame = encode_frame(MsgType::kInsertBatch, Status::kOk, "");
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(frame.data() + 8, &huge, sizeof(huge));
  FrameHeader h;
  EXPECT_EQ(decode_header(frame, h), Status::kTooLarge);
  // The cap itself is fine (the header only announces; no body needed here).
  const std::uint32_t cap = kMaxPayloadBytes;
  std::memcpy(frame.data() + 8, &cap, sizeof(cap));
  EXPECT_EQ(decode_header(frame, h), Status::kOk);
}

TEST(Frame, PointBatchRoundTrip) {
  PointBatch in;
  in.dim = 3;
  in.coords = {1, 2, 3, 4, 5, 6};
  PointBatch out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.dim, 3);
  EXPECT_EQ(out.coords, in.coords);
  EXPECT_EQ(out.count(), 2u);
}

TEST(Frame, PointBatchRejectsBadBodies) {
  PointBatch in;
  in.dim = 2;
  in.coords = {7, 8, 9, 10};
  const std::string body = in.encode();
  PointBatch out;

  // Truncation at every length strictly inside the body.
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(out.decode(std::string_view(body).substr(0, len)))
        << "body prefix of " << len << " bytes";
  }
  // Trailing garbage.
  EXPECT_FALSE(out.decode(body + "!"));
  // dim out of range.
  PointBatch bad = in;
  bad.dim = 0;
  EXPECT_FALSE(out.decode(bad.encode()));
  bad.dim = kMaxDim + 1;
  EXPECT_FALSE(out.decode(bad.encode()));
  // coords not a multiple of dim.
  bad = in;
  bad.coords.push_back(11);
  EXPECT_FALSE(out.decode(bad.encode()));
  EXPECT_TRUE(out.decode(in.encode()));  // the pristine body still decodes
}

TEST(Frame, HostileVectorLengthCannotOverAllocate) {
  // A body announcing 2^61 coordinates but carrying none: the decoder must
  // reject on the announced-vs-remaining comparison before any resize.
  std::string body;
  const std::int32_t dim = 2;
  body.append(reinterpret_cast<const char*>(&dim), sizeof(dim));
  const std::uint64_t huge = std::uint64_t{1} << 61;
  body.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  PointBatch out;
  EXPECT_FALSE(out.decode(body));
  EXPECT_TRUE(out.coords.empty());
}

TEST(Frame, BatchReplyRoundTrip) {
  BatchReply in;
  in.accepted = 512;
  in.backlog = 12345;
  BatchReply out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.accepted, 512u);
  EXPECT_EQ(out.backlog, 12345);
  EXPECT_FALSE(out.decode(in.encode() + "x"));
  EXPECT_FALSE(out.decode(""));
}

TEST(Frame, QueryRequestRoundTripAndValidation) {
  QueryRequest in;
  in.k = 7;
  in.capacity_slack = 1.25;
  in.barrier = false;
  in.summary_only = true;
  in.solver_restarts = 3;
  QueryRequest out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.k, 7);
  EXPECT_DOUBLE_EQ(out.capacity_slack, 1.25);
  EXPECT_FALSE(out.barrier);
  EXPECT_TRUE(out.summary_only);
  EXPECT_EQ(out.solver_restarts, 3);

  // Negative k rejected; non-0/1 bool byte rejected.
  QueryRequest bad = in;
  bad.k = -1;
  EXPECT_FALSE(out.decode(bad.encode()));
  std::string body = in.encode();
  body[sizeof(std::int32_t) + sizeof(double)] = 2;  // the `barrier` byte
  EXPECT_FALSE(out.decode(body));
}

TEST(Frame, QueryReplyRoundTrip) {
  QueryReply in;
  in.ok = true;
  in.error = "";
  in.net_points = 4000;
  in.summary_points = 93;
  in.capacity = 1100.0;
  in.cost = 3.5e6;
  in.feasible = true;
  in.dim = 2;
  in.center_coords = {10, 20, 30, 40, 50, 60};
  in.merge_millis = 12.5;
  in.solve_millis = 80.25;
  QueryReply out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.net_points, 4000);
  EXPECT_EQ(out.summary_points, 93u);
  EXPECT_DOUBLE_EQ(out.capacity, 1100.0);
  EXPECT_DOUBLE_EQ(out.cost, 3.5e6);
  EXPECT_EQ(out.center_coords, in.center_coords);
  EXPECT_DOUBLE_EQ(out.solve_millis, 80.25);

  // Centers not a multiple of dim.
  QueryReply bad = in;
  bad.center_coords.push_back(70);
  EXPECT_FALSE(out.decode(bad.encode()));
  // dim 0 demands no centers.
  bad = in;
  bad.dim = 0;
  EXPECT_FALSE(out.decode(bad.encode()));
  bad.center_coords.clear();
  EXPECT_TRUE(out.decode(bad.encode()));
}

TEST(Frame, CheckpointAndTextBodies) {
  CheckpointRequest ckpt;
  ckpt.path = "/tmp/snap.bin";
  CheckpointRequest out;
  ASSERT_TRUE(out.decode(ckpt.encode()));
  EXPECT_EQ(out.path, "/tmp/snap.bin");
  ckpt.path.clear();
  EXPECT_FALSE(out.decode(ckpt.encode()));  // empty path is meaningless

  std::string text;
  ASSERT_TRUE(decode_text(encode_text("{\"x\":1}"), text));
  EXPECT_EQ(text, "{\"x\":1}");
  // String length announcing more than the body holds.
  std::string body = encode_text("hello");
  body.resize(body.size() - 2);
  EXPECT_FALSE(decode_text(body, text));
}

}  // namespace
}  // namespace skc::net
