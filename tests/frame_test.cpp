// Wire protocol (src/skc/net/frame.h): every header field is validated,
// every payload decoder is strict (truncation, impossible sizes, trailing
// garbage all rejected), and a hostile length prefix can never provoke an
// allocation larger than the bytes actually present — the properties the
// server relies on to survive arbitrary peers.
#include "skc/net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>

namespace skc::net {
namespace {

FrameHeader decode_ok(std::string_view bytes) {
  FrameHeader h;
  EXPECT_EQ(decode_header(bytes, h), Status::kOk);
  return h;
}

TEST(Frame, HeaderRoundTripsEveryTypeAndStatus) {
  for (int t = 0; t < kNumMsgTypes; ++t) {
    for (int s = 0; s <= static_cast<int>(kMaxStatusValue); ++s) {
      const std::string payload(static_cast<std::size_t>(t) * 3, 'x');
      const std::string frame =
          encode_frame(static_cast<MsgType>(t), static_cast<Status>(s), payload);
      ASSERT_EQ(frame.size(), frame_wire_bytes(payload.size()));
      const FrameHeader h = decode_ok(frame);
      EXPECT_EQ(h.type, static_cast<MsgType>(t));
      EXPECT_EQ(h.status, static_cast<Status>(s));
      EXPECT_EQ(h.payload_bytes, payload.size());
      EXPECT_EQ(frame.substr(kFrameHeaderBytes), payload);
    }
  }
}

TEST(Frame, WireBytesMatchesEncoderOutput) {
  // frame_wire_bytes is the contract dist/Network::send accounts with; it
  // must equal what the encoder actually emits at every payload size.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{12},
                              std::size_t{4096}}) {
    const std::string body(n, 'p');
    EXPECT_EQ(encode_frame(MsgType::kQuery, Status::kOk, body).size(),
              frame_wire_bytes(n));
  }
}

TEST(Frame, TruncatedHeaderIsMalformed) {
  const std::string frame = encode_frame(MsgType::kPing, Status::kOk, "abc");
  FrameHeader h;
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    EXPECT_EQ(decode_header(std::string_view(frame).substr(0, len), h),
              Status::kMalformed)
        << "header prefix of " << len << " bytes";
  }
}

TEST(Frame, BadMagicIsMalformed) {
  std::string frame = encode_frame(MsgType::kPing, Status::kOk, "");
  frame[0] = 'X';
  FrameHeader h;
  EXPECT_EQ(decode_header(frame, h), Status::kMalformed);
}

TEST(Frame, UnknownVersionAndTypeAreUnsupported) {
  std::string frame = encode_frame(MsgType::kPing, Status::kOk, "");
  frame[4] = static_cast<char>(kWireVersionTraced + 1);  // first invalid version
  FrameHeader h;
  EXPECT_EQ(decode_header(frame, h), Status::kUnsupported);

  frame = encode_frame(MsgType::kPing, Status::kOk, "");
  frame[5] = static_cast<char>(kNumMsgTypes);  // first invalid type
  EXPECT_EQ(decode_header(frame, h), Status::kUnsupported);
}

TEST(Frame, InvalidStatusIsMalformed) {
  std::string frame = encode_frame(MsgType::kPing, Status::kOk, "");
  frame[6] = static_cast<char>(0x7f);  // status low byte, way out of range
  FrameHeader h;
  EXPECT_EQ(decode_header(frame, h), Status::kMalformed);
}

TEST(Frame, OverLimitPayloadLengthIsTooLarge) {
  std::string frame = encode_frame(MsgType::kInsertBatch, Status::kOk, "");
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(frame.data() + 8, &huge, sizeof(huge));
  FrameHeader h;
  EXPECT_EQ(decode_header(frame, h), Status::kTooLarge);
  // The cap itself is fine (the header only announces; no body needed here).
  const std::uint32_t cap = kMaxPayloadBytes;
  std::memcpy(frame.data() + 8, &cap, sizeof(cap));
  EXPECT_EQ(decode_header(frame, h), Status::kOk);
}

TEST(Frame, PointBatchRoundTrip) {
  PointBatch in;
  in.dim = 3;
  in.coords = {1, 2, 3, 4, 5, 6};
  PointBatch out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.dim, 3);
  EXPECT_EQ(out.coords, in.coords);
  EXPECT_EQ(out.count(), 2u);
}

TEST(Frame, PointBatchRejectsBadBodies) {
  PointBatch in;
  in.dim = 2;
  in.coords = {7, 8, 9, 10};
  const std::string body = in.encode();
  PointBatch out;

  // Truncation at every length strictly inside the body.
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(out.decode(std::string_view(body).substr(0, len)))
        << "body prefix of " << len << " bytes";
  }
  // Trailing garbage.
  EXPECT_FALSE(out.decode(body + "!"));
  // dim out of range.
  PointBatch bad = in;
  bad.dim = 0;
  EXPECT_FALSE(out.decode(bad.encode()));
  bad.dim = kMaxDim + 1;
  EXPECT_FALSE(out.decode(bad.encode()));
  // coords not a multiple of dim.
  bad = in;
  bad.coords.push_back(11);
  EXPECT_FALSE(out.decode(bad.encode()));
  EXPECT_TRUE(out.decode(in.encode()));  // the pristine body still decodes
}

TEST(Frame, HostileVectorLengthCannotOverAllocate) {
  // A body announcing 2^61 coordinates but carrying none: the decoder must
  // reject on the announced-vs-remaining comparison before any resize.
  std::string body;
  const std::int32_t dim = 2;
  body.append(reinterpret_cast<const char*>(&dim), sizeof(dim));
  const std::uint64_t huge = std::uint64_t{1} << 61;
  body.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  PointBatch out;
  EXPECT_FALSE(out.decode(body));
  EXPECT_TRUE(out.coords.empty());
}

TEST(Frame, BatchReplyRoundTrip) {
  BatchReply in;
  in.accepted = 512;
  in.backlog = 12345;
  BatchReply out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.accepted, 512u);
  EXPECT_EQ(out.backlog, 12345);
  EXPECT_FALSE(out.decode(in.encode() + "x"));
  EXPECT_FALSE(out.decode(""));
}

TEST(Frame, QueryRequestRoundTripAndValidation) {
  QueryRequest in;
  in.k = 7;
  in.capacity_slack = 1.25;
  in.barrier = false;
  in.summary_only = true;
  in.solver_restarts = 3;
  QueryRequest out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.k, 7);
  EXPECT_DOUBLE_EQ(out.capacity_slack, 1.25);
  EXPECT_FALSE(out.barrier);
  EXPECT_TRUE(out.summary_only);
  EXPECT_EQ(out.solver_restarts, 3);

  // Negative k rejected; non-0/1 bool byte rejected.
  QueryRequest bad = in;
  bad.k = -1;
  EXPECT_FALSE(out.decode(bad.encode()));
  std::string body = in.encode();
  body[sizeof(std::int32_t) + sizeof(double)] = 2;  // the `barrier` byte
  EXPECT_FALSE(out.decode(body));
}

TEST(Frame, QueryReplyRoundTrip) {
  QueryReply in;
  in.ok = true;
  in.error = "";
  in.net_points = 4000;
  in.summary_points = 93;
  in.capacity = 1100.0;
  in.cost = 3.5e6;
  in.feasible = true;
  in.dim = 2;
  in.center_coords = {10, 20, 30, 40, 50, 60};
  in.merge_millis = 12.5;
  in.solve_millis = 80.25;
  QueryReply out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.net_points, 4000);
  EXPECT_EQ(out.summary_points, 93u);
  EXPECT_DOUBLE_EQ(out.capacity, 1100.0);
  EXPECT_DOUBLE_EQ(out.cost, 3.5e6);
  EXPECT_EQ(out.center_coords, in.center_coords);
  EXPECT_DOUBLE_EQ(out.solve_millis, 80.25);

  // Centers not a multiple of dim.
  QueryReply bad = in;
  bad.center_coords.push_back(70);
  EXPECT_FALSE(out.decode(bad.encode()));
  // dim 0 demands no centers.
  bad = in;
  bad.dim = 0;
  EXPECT_FALSE(out.decode(bad.encode()));
  bad.center_coords.clear();
  EXPECT_TRUE(out.decode(bad.encode()));
}

// Decoding `body` must succeed, and every strict prefix plus one byte of
// trailing garbage must be rejected — the strictness contract every payload
// codec in the protocol promises.
template <typename Body>
void expect_strict(const std::string& body) {
  Body out;
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(out.decode(std::string_view(body).substr(0, len)))
        << "body prefix of " << len << " bytes";
  }
  EXPECT_FALSE(out.decode(body + "!"));
  EXPECT_TRUE(out.decode(body));
}

TEST(Frame, WorkerHelloRoundTrip) {
  WorkerHello in;
  in.worker_id = 3;
  in.dim = 5;
  in.k = 9;
  in.log_delta = 12;
  in.fingerprint = 0xfeedbeefcafe1234ull;
  WorkerHello out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.worker_id, 3);
  EXPECT_EQ(out.dim, 5);
  EXPECT_EQ(out.k, 9);
  EXPECT_EQ(out.log_delta, 12);
  EXPECT_EQ(out.fingerprint, 0xfeedbeefcafe1234ull);
  expect_strict<WorkerHello>(in.encode());
}

TEST(Frame, WorkerHelloReplyRoundTrip) {
  WorkerHelloReply in;
  in.ok = false;
  in.message = "config fingerprint mismatch";
  in.num_shards = 4;
  in.net_points = 777;
  WorkerHelloReply out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.message, "config fingerprint mismatch");
  EXPECT_EQ(out.num_shards, 4);
  EXPECT_EQ(out.net_points, 777);
  expect_strict<WorkerHelloReply>(in.encode());
}

TEST(Frame, HeartbeatReplyRoundTrip) {
  HeartbeatReply in;
  in.backlog = 42;
  in.net_points = 4096;
  in.events_applied = 5000;
  HeartbeatReply out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.backlog, 42);
  EXPECT_EQ(out.net_points, 4096);
  EXPECT_EQ(out.events_applied, 5000);
  expect_strict<HeartbeatReply>(in.encode());
}

TEST(Frame, SketchSnapshotRoundTrip) {
  SketchSnapshot in;
  in.net_points = 123;
  in.events_applied = 456;
  in.blob = std::string("\x00\x01\x02opaque-builder-bytes\xff", 24);
  SketchSnapshot out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_EQ(out.net_points, 123);
  EXPECT_EQ(out.events_applied, 456);
  EXPECT_EQ(out.blob, in.blob);
  expect_strict<SketchSnapshot>(in.encode());
}

TEST(Frame, CoresetReplyRoundTrip) {
  CoresetReply in;
  in.ok = true;
  in.net_points = 900;
  in.o = 2.5e4;
  in.dim = 2;
  in.weights = {1.0, 2.5, 3.0};
  in.coords = {1, 2, 3, 4, 5, 6};
  CoresetReply out;
  ASSERT_TRUE(out.decode(in.encode()));
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.net_points, 900);
  EXPECT_DOUBLE_EQ(out.o, 2.5e4);
  EXPECT_EQ(out.weights, in.weights);
  EXPECT_EQ(out.coords, in.coords);
  expect_strict<CoresetReply>(in.encode());

  // Structural validation: coords must be dim * weights.size().
  CoresetReply bad = in;
  bad.coords.push_back(7);
  EXPECT_FALSE(out.decode(bad.encode()));
  bad = in;
  bad.weights.push_back(4.0);
  EXPECT_FALSE(out.decode(bad.encode()));
}

// Exhaustive per-type round-trip: a representative payload for every one of
// the kNumMsgTypes opcodes framed and decoded end to end, so adding a
// MsgType without a codec (or with a lax one) fails here, not in
// production.  The switch has no default: a new enum member breaks the
// compile until this test covers it.
TEST(Frame, EveryMessageTypeHasAStrictPayloadCodec) {
  for (int t = 0; t < kNumMsgTypes; ++t) {
    const MsgType type = static_cast<MsgType>(t);
    std::string body;
    switch (type) {
      case MsgType::kPing:
      case MsgType::kHeartbeat:
      case MsgType::kMergeSketch:
      case MsgType::kFetchCoreset:
      case MsgType::kShutdown:
      case MsgType::kTenantStats:
      case MsgType::kClusterTraceDump:
      case MsgType::kFlightRecorder:
        body.clear();  // empty request bodies
        break;
      case MsgType::kWorkerStats: {
        WorkerStatsReply r;  // empty request; the reply codec is the strict one
        r.trace_dropped_spans = 3;
        body = r.encode();
        expect_strict<WorkerStatsReply>(body);
        body.clear();
        break;
      }
      case MsgType::kInsertBatch:
      case MsgType::kDeleteBatch: {
        PointBatch b;
        b.dim = 2;
        b.coords = {1, 2, 3, 4};
        body = b.encode();
        expect_strict<PointBatch>(body);
        break;
      }
      case MsgType::kQuery: {
        QueryRequest q;
        q.k = 3;
        body = q.encode();
        expect_strict<QueryRequest>(body);
        break;
      }
      case MsgType::kMetrics:
      case MsgType::kTraceDump:
      case MsgType::kPrometheus: {
        body = encode_text("payload");
        std::string text;
        EXPECT_TRUE(decode_text(body, text));
        EXPECT_FALSE(decode_text(body.substr(0, body.size() - 1), text));
        break;
      }
      case MsgType::kCheckpoint: {
        CheckpointRequest c;
        c.path = "/tmp/x";
        body = c.encode();
        expect_strict<CheckpointRequest>(body);
        break;
      }
      case MsgType::kWorkerHello: {
        WorkerHello h;
        h.dim = 2;
        h.k = 4;
        h.log_delta = 6;
        h.fingerprint = 99;
        body = h.encode();
        expect_strict<WorkerHello>(body);
        break;
      }
      case MsgType::kShipSnapshot: {
        SketchSnapshot s;
        s.net_points = 10;
        s.blob = "blob";
        body = s.encode();
        expect_strict<SketchSnapshot>(body);
        break;
      }
    }
    const std::string frame = encode_frame(type, Status::kOk, body);
    const FrameHeader h = decode_ok(frame);
    EXPECT_EQ(h.type, type);
    EXPECT_EQ(h.payload_bytes, body.size());
    EXPECT_EQ(frame.substr(kFrameHeaderBytes), body);
  }
}

// Per-type payload caps: sketch-carrying frames accept bodies the ordinary
// cap rejects, and the big cap still has a hard ceiling.
TEST(Frame, PerTypePayloadCapBoundaries) {
  FrameHeader h;
  for (int t = 0; t < kNumMsgTypes; ++t) {
    const MsgType type = static_cast<MsgType>(t);
    std::string frame = encode_frame(type, Status::kOk, "");
    const std::uint32_t cap = max_payload_bytes(type);

    // At the cap: accepted.  One past: kTooLarge.
    std::memcpy(frame.data() + 8, &cap, sizeof(cap));
    EXPECT_EQ(decode_header(frame, h), Status::kOk) << "type " << t;
    const std::uint32_t over = cap + 1;
    std::memcpy(frame.data() + 8, &over, sizeof(over));
    EXPECT_EQ(decode_header(frame, h), Status::kTooLarge) << "type " << t;

    // The sketch types' cap must exceed the ordinary one (that asymmetry is
    // the point), and the ordinary types must reject a sketch-sized body.
    const bool sketchy = type == MsgType::kMergeSketch ||
                         type == MsgType::kFetchCoreset ||
                         type == MsgType::kShipSnapshot;
    EXPECT_EQ(cap, sketchy ? kMaxSketchPayloadBytes : kMaxPayloadBytes);
    if (!sketchy) {
      const std::uint32_t sketch_sized = kMaxPayloadBytes + 1;
      std::memcpy(frame.data() + 8, &sketch_sized, sizeof(sketch_sized));
      EXPECT_EQ(decode_header(frame, h), Status::kTooLarge) << "type " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Tenant-id field (wire version 2).

TEST(Frame, TenantFrameRoundTrip) {
  const std::string payload = "inner-body-bytes";
  const std::string frame = encode_tenant_frame(MsgType::kInsertBatch,
                                                Status::kOk, "acme-7", payload);
  FrameHeader h;
  ASSERT_EQ(decode_header(frame, h), Status::kOk);
  EXPECT_EQ(h.version, kWireVersionTenant);
  EXPECT_EQ(h.type, MsgType::kInsertBatch);
  EXPECT_EQ(h.payload_bytes, 1 + 6 + payload.size());

  const std::string body = frame.substr(kFrameHeaderBytes);
  std::string_view tenant, inner;
  ASSERT_TRUE(split_tenant_prefix(body, tenant, inner));
  EXPECT_EQ(tenant, "acme-7");
  EXPECT_EQ(inner, payload);
}

TEST(Frame, TenantFrameEmptyIdAddressesDefaultTenant) {
  const std::string frame =
      encode_tenant_frame(MsgType::kQuery, Status::kOk, "", "q");
  const std::string body = frame.substr(kFrameHeaderBytes);
  std::string_view tenant, inner;
  ASSERT_TRUE(split_tenant_prefix(body, tenant, inner));
  EXPECT_TRUE(tenant.empty());
  EXPECT_EQ(inner, "q");
}

TEST(Frame, TenantPrefixRejectsTruncation) {
  std::string_view tenant, inner;
  // No length byte at all.
  EXPECT_FALSE(split_tenant_prefix("", tenant, inner));
  // Length byte announcing more id bytes than the payload holds — at every
  // truncation point inside the prefix.
  std::string payload;
  payload.push_back(static_cast<char>(10));
  payload.append("abc");  // only 3 of the announced 10 id bytes present
  EXPECT_FALSE(split_tenant_prefix(payload, tenant, inner));
  const std::string good =
      encode_tenant_frame(MsgType::kPing, Status::kOk, "tenant-x", "body")
          .substr(kFrameHeaderBytes);
  for (std::size_t len = 0; len < 1 + 8; ++len) {  // inside the prefix only
    EXPECT_FALSE(split_tenant_prefix(std::string_view(good).substr(0, len),
                                     tenant, inner))
        << "prefix truncated to " << len << " bytes";
  }
  EXPECT_TRUE(split_tenant_prefix(good, tenant, inner));
}

TEST(Frame, ValidTenantIdCharsetAndLength) {
  EXPECT_TRUE(valid_tenant_id(""));
  EXPECT_TRUE(valid_tenant_id("acme"));
  EXPECT_TRUE(valid_tenant_id("A-Z_0.9"));
  EXPECT_TRUE(valid_tenant_id(std::string(kMaxTenantIdBytes, 'a')));
  EXPECT_FALSE(valid_tenant_id(std::string(kMaxTenantIdBytes + 1, 'a')));
  EXPECT_FALSE(valid_tenant_id("spaces bad"));
  EXPECT_FALSE(valid_tenant_id("slash/bad"));
  EXPECT_FALSE(valid_tenant_id(std::string("nul\0byte", 8)));
  EXPECT_FALSE(valid_tenant_id("\xff"));
}

// The PR-6 byte-compatibility pin: the version-1 encoding must never drift.
// A v1 INSERT_BATCH frame is reproduced here byte by byte from the format
// comment at the top of frame.h; if this test fails, old clients break.
TEST(Frame, Version1FramesAreByteStable) {
  PointBatch batch;
  batch.dim = 2;
  batch.coords = {3, 4};
  const std::string body = batch.encode();
  const std::string frame =
      encode_frame(MsgType::kInsertBatch, Status::kOk, body);

  std::string expected;
  expected += std::string("\x53\x4b\x43\x46", 4);       // magic "SKCF"
  expected += '\x01';                                   // version 1
  expected += '\x01';                                   // type kInsertBatch
  expected += std::string("\x00\x00", 2);               // status kOk
  const auto n = static_cast<std::uint32_t>(body.size());
  expected.append(reinterpret_cast<const char*>(&n), 4);  // payload_bytes LE
  expected += body;
  EXPECT_EQ(frame, expected);

  // And the v1 body itself: i32 dim, u64 count, coords.
  std::string expected_body;
  const std::int32_t dim = 2;
  expected_body.append(reinterpret_cast<const char*>(&dim), 4);
  const std::uint64_t count = 2;
  expected_body.append(reinterpret_cast<const char*>(&count), 8);
  const Coord c3 = 3, c4 = 4;
  expected_body.append(reinterpret_cast<const char*>(&c3), sizeof(Coord));
  expected_body.append(reinterpret_cast<const char*>(&c4), sizeof(Coord));
  EXPECT_EQ(body, expected_body);
}

TEST(Frame, CheckpointAndTextBodies) {
  CheckpointRequest ckpt;
  ckpt.path = "/tmp/snap.bin";
  CheckpointRequest out;
  ASSERT_TRUE(out.decode(ckpt.encode()));
  EXPECT_EQ(out.path, "/tmp/snap.bin");
  ckpt.path.clear();
  EXPECT_FALSE(out.decode(ckpt.encode()));  // empty path is meaningless

  std::string text;
  ASSERT_TRUE(decode_text(encode_text("{\"x\":1}"), text));
  EXPECT_EQ(text, "{\"x\":1}");
  // String length announcing more than the body holds.
  std::string body = encode_text("hello");
  body.resize(body.size() - 2);
  EXPECT_FALSE(decode_text(body, text));
}

}  // namespace
}  // namespace skc::net
