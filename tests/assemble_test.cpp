// Direct tests of the shared assembly step with synthetic recovered data —
// pins the FAIL rules (mass bound, lost-mass budget) independent of any
// sketch.
#include "skc/coreset/assemble.h"

#include <gtest/gtest.h>

#include "skc/coreset/sampling.h"
#include "test_util.h"

namespace skc {
namespace {

struct Fixture {
  CoresetParams params = CoresetParams::practical(2, LrOrder{2.0}, 0.2, 0.2);
  HierarchicalGrid grid = make_grid(2, 4, params.seed);

  /// Builds recovered data describing one heavy chain root->level0 cell with
  /// crucial children at level 1 carrying `mass` points each.
  RecoveredLevelData simple_data(double child_mass, double o) {
    RecoveredLevelData data;
    const int L = grid.log_delta();
    data.counting.resize(static_cast<std::size_t>(L));
    data.part_mass.resize(static_cast<std::size_t>(L + 1));
    data.sample_points.assign(static_cast<std::size_t>(L + 1), PointSet(2));
    data.incomplete_cells.resize(static_cast<std::size_t>(L + 1));

    // One heavy level-0 cell (the one containing point (8, 8)).
    PointSet probe(2);
    probe.push_back({8, 8});
    const CellKey c0 = grid.cell_of(probe[0], 0);
    const double t0 = part_threshold(grid, params.partition(), 0, o);
    data.counting[0].push_back(EstimatedCell{c0.index, t0 + child_mass * 4.0});
    // Its level-1 children carry the mass as crucial cells.
    for (const CellKey& child : grid.children(c0)) {
      data.counting[1].push_back(EstimatedCell{child.index, child_mass});
      data.part_mass[1].push_back(EstimatedCell{child.index, child_mass});
    }
    return data;
  }
};

TEST(Assemble, AcceptsCleanData) {
  Fixture f;
  const double o = 2e5;
  RecoveredLevelData data = f.simple_data(12.0, o);
  // A sample point inside one crucial child.
  PointSet probe(2);
  probe.push_back({8, 8});
  data.sample_points[1].push_back(probe[0]);
  const BuildAttempt attempt = assemble_coreset(f.grid, f.params, o, data, 60.0);
  ASSERT_TRUE(attempt.ok) << attempt.fail_reason;
  EXPECT_EQ(attempt.coreset.points.size(), 1);
  EXPECT_EQ(attempt.coreset.levels[0], 1);
}

TEST(Assemble, MassBoundFails) {
  Fixture f;
  const double o = 2e5;
  // Crucial cells cannot individually exceed T_1, so trip the level bound by
  // shrinking the bound constant instead.
  f.params.mass_bound_const = 0.001;
  RecoveredLevelData data = f.simple_data(12.0, o);
  const BuildAttempt attempt = assemble_coreset(f.grid, f.params, o, data, 1e9);
  ASSERT_FALSE(attempt.ok);
  EXPECT_NE(std::string(attempt.fail_reason).find("part mass"), std::string::npos);
}

TEST(Assemble, SmallLostMassIsAbsorbed) {
  Fixture f;
  const double o = 2e5;
  RecoveredLevelData data = f.simple_data(12.0, o);
  PointSet probe(2);
  probe.push_back({8, 8});
  data.sample_points[1].push_back(probe[0]);
  // One incomplete crucial cell: budget is eta * n / (4k) = 0.2*4000/8 = 100
  // "points"; the cell's charge min(tau, T_1) is far below that.
  data.incomplete_cells[1].push_back(f.grid.cell_of(probe[0], 1));
  const BuildAttempt attempt = assemble_coreset(f.grid, f.params, o, data, 4000.0);
  EXPECT_TRUE(attempt.ok) << attempt.fail_reason;
}

TEST(Assemble, LargeLostMassFails) {
  Fixture f;
  const double o = 2e5;
  RecoveredLevelData data = f.simple_data(12.0, o);
  PointSet probe(2);
  probe.push_back({8, 8});
  // Tiny n makes the budget eta*n/(4k) tiny; the incomplete cell's charge
  // exceeds it.
  data.incomplete_cells[1].push_back(f.grid.cell_of(probe[0], 1));
  const BuildAttempt attempt = assemble_coreset(f.grid, f.params, o, data, 60.0);
  ASSERT_FALSE(attempt.ok);
  EXPECT_NE(std::string(attempt.fail_reason).find("lost-mass"), std::string::npos);
}

TEST(Assemble, SamplesOutsideCrucialCellsAreIgnored) {
  Fixture f;
  const double o = 2e5;
  RecoveredLevelData data = f.simple_data(12.0, o);
  // A point far from the heavy chain: its cell is not crucial (parent not
  // heavy), so it must not enter the coreset.
  PointSet inside(2), outside(2);
  inside.push_back({8, 8});
  data.sample_points[1].push_back(inside[0]);
  // Find a point in a different level-0 cell.
  for (Coord x = 1; x <= 16; ++x) {
    PointSet cand(2);
    cand.push_back({x, 16});
    if (!(f.grid.cell_of(cand[0], 0) == f.grid.cell_of(inside[0], 0))) {
      data.sample_points[1].push_back(cand[0]);
      break;
    }
  }
  const BuildAttempt attempt = assemble_coreset(f.grid, f.params, o, data, 60.0);
  ASSERT_TRUE(attempt.ok) << attempt.fail_reason;
  EXPECT_EQ(attempt.coreset.points.size(), 1);
}

}  // namespace
}  // namespace skc
