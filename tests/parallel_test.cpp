#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "skc/common/timer.h"
#include "skc/parallel/parallel_for.h"
#include "skc/parallel/thread_pool.h"

namespace skc {
namespace {

TEST(ThreadPool, InlinePoolRunsTasksSynchronously) {
  ThreadPool pool(0);
  int counter = 0;
  pool.submit([&] { ++counter; });
  EXPECT_EQ(counter, 1);  // executed before submit returned
  pool.wait_idle();       // no-op, must not hang
}

TEST(ThreadPool, WorkersExecuteAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      volatile double x = 0;
      for (int j = 0; j < 100000; ++j) x = x + j;
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
      pool, /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(5, 5, [&](std::int64_t) { ++count; }, pool);
  EXPECT_EQ(count, 0);
  parallel_for(0, 3, [&](std::int64_t) { ++count; }, pool, /*grain=*/1024);
  EXPECT_EQ(count, 3);  // below grain: runs inline on the caller
}

TEST(ParallelForBlocked, BlocksAreDisjointAndCover) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::int64_t>> blocks;
  parallel_for_blocked(
      0, 5000,
      [&](std::int64_t lo, std::int64_t hi) {
        std::scoped_lock lock(mu);
        blocks.emplace_back(lo, hi);
      },
      pool, /*grain=*/100);
  std::sort(blocks.begin(), blocks.end());
  std::int64_t expect = 0;
  for (const auto& [lo, hi] : blocks) {
    EXPECT_EQ(lo, expect);
    EXPECT_GT(hi, lo);
    expect = hi;
  }
  EXPECT_EQ(expect, 5000);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 2000000; ++i) x = x + i;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), 1e3 * 0.0);  // millis and seconds agree in sign
  t.reset();
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace skc
