#include "skc/geometry/point_set.h"

#include <gtest/gtest.h>

#include "skc/geometry/weighted_set.h"

namespace skc {
namespace {

TEST(PointSet, EmptyBasics) {
  PointSet s(3);
  EXPECT_EQ(s.dim(), 3);
  EXPECT_EQ(s.size(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.max_coord(), 0);
}

TEST(PointSet, PushAndAccess) {
  PointSet s(2);
  s.push_back({1, 2});
  s.push_back({3, 4});
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s[0][0], 1);
  EXPECT_EQ(s[0][1], 2);
  EXPECT_EQ(s[1][0], 3);
  EXPECT_EQ(s[1][1], 4);
}

TEST(PointSet, MutablePoint) {
  PointSet s(2);
  s.push_back({1, 2});
  s.mutable_point(0)[1] = 9;
  EXPECT_EQ(s[0][1], 9);
}

TEST(PointSet, Append) {
  PointSet a(2), b(2);
  a.push_back({1, 1});
  b.push_back({2, 2});
  b.push_back({3, 3});
  a.append(b);
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a[2][0], 3);
}

TEST(PointSet, SwapRemove) {
  PointSet s(1);
  s.push_back({1});
  s.push_back({2});
  s.push_back({3});
  s.swap_remove(0);
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s[0][0], 3);  // last swapped in
  EXPECT_EQ(s[1][0], 2);
  s.swap_remove(1);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s[0][0], 3);
}

TEST(PointSet, MinMaxCoord) {
  PointSet s(2);
  s.push_back({5, 17});
  s.push_back({3, 8});
  EXPECT_EQ(s.max_coord(), 17);
  EXPECT_EQ(s.min_coord(), 3);
}

TEST(PointSet, WithinGrid) {
  PointSet s(2);
  s.push_back({1, 16});
  EXPECT_TRUE(s.within_grid(16));
  EXPECT_FALSE(s.within_grid(15));
  s.push_back({0, 4});  // below 1
  EXPECT_FALSE(s.within_grid(16));
}

TEST(PointSet, EqualityIsStructural) {
  PointSet a(2), b(2);
  a.push_back({1, 2});
  b.push_back({1, 2});
  EXPECT_EQ(a, b);
  b.push_back({3, 4});
  EXPECT_NE(a, b);
}

TEST(GridLogDelta, RoundsUpToPowerOfTwo) {
  EXPECT_EQ(grid_log_delta(1), 1);
  EXPECT_EQ(grid_log_delta(2), 1);
  EXPECT_EQ(grid_log_delta(3), 2);
  EXPECT_EQ(grid_log_delta(4), 2);
  EXPECT_EQ(grid_log_delta(5), 3);
  EXPECT_EQ(grid_log_delta(1000), 10);
  EXPECT_EQ(grid_log_delta(1024), 10);
  EXPECT_EQ(grid_log_delta(1025), 11);
}

TEST(ToString, RendersCoordinates) {
  PointSet s(3);
  s.push_back({1, -2, 30});
  EXPECT_EQ(to_string(s[0]), "(1, -2, 30)");
}

TEST(WeightedPointSet, UnitWrapsWithOnes) {
  PointSet s(2);
  s.push_back({1, 2});
  s.push_back({3, 4});
  const WeightedPointSet w = WeightedPointSet::unit(s);
  EXPECT_EQ(w.size(), 2);
  EXPECT_DOUBLE_EQ(w.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(w.total_weight(), 2.0);
  EXPECT_TRUE(w.integral_weights());
}

TEST(WeightedPointSet, RejectsNonPositiveWeights) {
  WeightedPointSet w(1);
  const std::vector<Coord> p = {1};
  EXPECT_DEATH(w.push_back(p, 0.0), "");
}

TEST(WeightedPointSet, IntegralWeightDetection) {
  WeightedPointSet w(1);
  const std::vector<Coord> p = {1};
  w.push_back(p, 4.0);
  EXPECT_TRUE(w.integral_weights());
  w.push_back(p, 2.5);
  EXPECT_FALSE(w.integral_weights());
}

TEST(WeightedPointSet, AppendAccumulates) {
  WeightedPointSet a(1), b(1);
  const std::vector<Coord> p = {1};
  a.push_back(p, 1.0);
  b.push_back(p, 2.0);
  a.append(b);
  EXPECT_EQ(a.size(), 2);
  EXPECT_DOUBLE_EQ(a.total_weight(), 3.0);
}

}  // namespace
}  // namespace skc
