#include "skc/hash/field61.h"

#include <gtest/gtest.h>

#include "skc/common/random.h"

namespace skc {
namespace {

TEST(Field61, ReduceIdentities) {
  EXPECT_EQ(f61::reduce(0), 0u);
  EXPECT_EQ(f61::reduce(f61::kP), 0u);
  EXPECT_EQ(f61::reduce(f61::kP + 5), 5u);
  EXPECT_EQ(f61::reduce(f61::kP - 1), f61::kP - 1);
}

TEST(Field61, AddSubRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.next_below(f61::kP);
    const std::uint64_t b = rng.next_below(f61::kP);
    EXPECT_EQ(f61::sub(f61::add(a, b), b), a);
    EXPECT_EQ(f61::add(f61::sub(a, b), b), a);
  }
}

TEST(Field61, MulMatchesSmallCases) {
  EXPECT_EQ(f61::mul(3, 5), 15u);
  EXPECT_EQ(f61::mul(f61::kP - 1, 2), f61::kP - 2);  // (-1)*2 = -2
  EXPECT_EQ(f61::mul(0, 12345), 0u);
}

TEST(Field61, MulIsCommutativeAndAssociative) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_below(f61::kP);
    const std::uint64_t b = rng.next_below(f61::kP);
    const std::uint64_t c = rng.next_below(f61::kP);
    EXPECT_EQ(f61::mul(a, b), f61::mul(b, a));
    EXPECT_EQ(f61::mul(f61::mul(a, b), c), f61::mul(a, f61::mul(b, c)));
  }
}

TEST(Field61, DistributiveLaw) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next_below(f61::kP);
    const std::uint64_t b = rng.next_below(f61::kP);
    const std::uint64_t c = rng.next_below(f61::kP);
    EXPECT_EQ(f61::mul(a, f61::add(b, c)), f61::add(f61::mul(a, b), f61::mul(a, c)));
  }
}

TEST(Field61, PowAndFermat) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = 1 + rng.next_below(f61::kP - 1);
    EXPECT_EQ(f61::pow(a, f61::kP - 1), 1u);  // Fermat's little theorem
  }
  EXPECT_EQ(f61::pow(2, 10), 1024u);
  EXPECT_EQ(f61::pow(7, 0), 1u);
}

TEST(Field61, InverseInverts) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = 1 + rng.next_below(f61::kP - 1);
    EXPECT_EQ(f61::mul(a, f61::inv(a)), 1u);
  }
}

TEST(Field61, Reduce128Large) {
  // (p-1)^2 mod p == 1.
  const __uint128_t big =
      static_cast<__uint128_t>(f61::kP - 1) * (f61::kP - 1);
  EXPECT_EQ(f61::reduce128(big), 1u);
}

}  // namespace
}  // namespace skc
