// EngineServer + SkcClient over loopback: the network round trip must be a
// semantics-free transport — a stream shipped through TCP frames produces
// exactly the state of an identical in-process engine — and the server must
// survive arbitrarily hostile bytes (truncated headers, bad magic,
// over-limit lengths, mid-frame disconnects) and keep serving.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "skc/engine/engine.h"
#include "skc/net/client.h"
#include "skc/net/frame.h"
#include "skc/net/server.h"
#include "skc/net/socket.h"
#include "skc/obs/trace.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

constexpr int kDim = 2;
constexpr int kLogDelta = 9;

CoresetParams test_params() {
  return CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
}

EngineOptions engine_options() {
  // Exact mode: every structure is a plain linear map, so a network-fed
  // engine and an in-process twin must agree bit-for-bit.
  EngineOptions opt;
  opt.num_shards = 2;
  opt.worker_threads = 2;
  opt.streaming.log_delta = kLogDelta;
  opt.streaming.max_points = 4000;
  opt.streaming.exact_storing = true;
  opt.streaming.distinct_budget = 1 << 20;
  opt.streaming.prune_interval = 0;
  return opt;
}

Stream churn_workload(int base_n, int extra_n, std::uint64_t seed) {
  MixtureConfig cfg;
  cfg.dim = kDim;
  cfg.log_delta = kLogDelta;
  cfg.clusters = 3;
  cfg.n = base_n;
  cfg.spread = 0.02;
  cfg.skew = 1.0;
  Rng rng(seed);
  PointSet base = gaussian_mixture(cfg, rng);
  cfg.n = extra_n;
  PointSet extra = gaussian_mixture(cfg, rng);
  Rng srng(seed + 1);
  return churn_stream(base, extra, ChurnConfig{}, srng);
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

/// Ships a stream through the client as insert/delete batches of at most
/// `chunk` points (the sketch is linear, so op grouping preserves state).
void ship_stream(net::SkcClient& client, const Stream& stream,
                 std::size_t chunk) {
  std::vector<Coord> ins, del;
  const auto flush = [&](std::vector<Coord>& coords, bool insert) {
    if (coords.empty()) return;
    const bool ok = insert ? client.insert_batch(kDim, coords)
                           : client.delete_batch(kDim, coords);
    ASSERT_TRUE(ok) << client.last_error();
    coords.clear();
  };
  for (const StreamEvent& ev : stream) {
    std::vector<Coord>& coords = ev.op == StreamOp::kInsert ? ins : del;
    coords.insert(coords.end(), ev.point.begin(), ev.point.end());
    if (coords.size() >= chunk * static_cast<std::size_t>(kDim)) {
      flush(coords, ev.op == StreamOp::kInsert);
    }
  }
  flush(ins, true);
  flush(del, false);
}

struct ServerFixture {
  ClusteringEngine engine;
  net::EngineServer server;

  explicit ServerFixture(const net::ServerOptions& opts = {})
      : engine(kDim, test_params(), engine_options()), server(engine, opts) {
    std::string error;
    started = server.start(error);
    EXPECT_TRUE(started) << error;
  }
  bool started = false;
};

// --------------------------------------------------------------------------
// The headline integration property.

TEST(NetServer, LoopbackRoundTripMatchesInProcessEngine) {
  const Stream stream = churn_workload(900, 400, 21);

  ClusteringEngine reference(kDim, test_params(), engine_options());
  for (const StreamEvent& ev : stream) reference.submit(ev);
  reference.flush();

  ServerFixture fx;
  ASSERT_TRUE(fx.started);
  net::SkcClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()))
      << client.last_error();
  ASSERT_TRUE(client.ping()) << client.last_error();
  ship_stream(client, stream, 256);

  // Same epoch, same sketch: the wire query (barrier) must agree with the
  // in-process query on the surviving count, the summary size, and the
  // solved centers.
  EngineQuery q;
  const EngineQueryResult want = reference.query(q);
  ASSERT_TRUE(want.ok) << want.error;

  net::QueryRequest request;
  net::QueryReply got;
  ASSERT_TRUE(client.query(request, got)) << client.last_error();
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.net_points, want.net_points);
  EXPECT_EQ(got.summary_points,
            static_cast<std::uint64_t>(want.summary.points.size()));
  EXPECT_DOUBLE_EQ(got.capacity, want.capacity);
  EXPECT_EQ(got.feasible, want.solution.feasible);
  EXPECT_EQ(got.dim, kDim);
  PointSet got_centers(kDim);
  for (std::size_t c = 0; c + kDim <= got.center_coords.size(); c += kDim) {
    got_centers.push_back(
        std::span<const Coord>(got.center_coords.data() + c, kDim));
  }
  EXPECT_EQ(testutil::canonical_multiset(got_centers),
            testutil::canonical_multiset(want.solution.centers));

  // Checkpoint RPC: the server-side snapshot restores into a fresh engine
  // whose merged summary is bit-identical to the in-process reference.
  const std::string snap = temp_path("net_server_ckpt.bin");
  ASSERT_TRUE(client.checkpoint(snap)) << client.last_error();
  ClusteringEngine restored(kDim, test_params(), engine_options());
  ASSERT_TRUE(restored.restore(snap));
  EngineQuery summary;
  summary.summary_only = true;
  const EngineQueryResult a = restored.query(summary);
  const EngineQueryResult b = reference.query(summary);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(testutil::canonical_multiset(a.summary.points),
            testutil::canonical_multiset(b.summary.points));

  // Transport metrics saw this session.
  const EngineMetrics m = fx.server.metrics();
  EXPECT_GE(m.net_connections_total, 1);
  EXPECT_GT(m.net_bytes_in, 0);
  EXPECT_GT(m.net_bytes_out, 0);
  const auto by_type = [&m](net::MsgType t) {
    return m.net_requests_by_type[static_cast<std::size_t>(t)];
  };
  EXPECT_EQ(by_type(net::MsgType::kPing), 1);
  EXPECT_EQ(by_type(net::MsgType::kQuery), 1);
  EXPECT_EQ(by_type(net::MsgType::kCheckpoint), 1);
  std::string json;
  ASSERT_TRUE(client.metrics_json(json)) << client.last_error();
  EXPECT_NE(json.find("\"net_connections_total\""), std::string::npos);
  EXPECT_NE(json.find("\"net_requests_by_type\""), std::string::npos);

  reference.shutdown();
  restored.shutdown();
}

// --------------------------------------------------------------------------
// Hostile peers.

/// Opens a raw loopback connection, writes `bytes` verbatim, optionally
/// reads one reply header, and closes.  Uses the library's own Socket
/// helpers, so no raw socket API leaks into the test.
net::Status inject(std::uint16_t port, std::string_view bytes,
                   bool read_reply) {
  std::string error;
  net::Socket s = net::connect_to("127.0.0.1", port, 2000, error);
  EXPECT_TRUE(s.valid()) << error;
  if (!s.valid()) return net::Status::kOk;
  if (!bytes.empty()) {
    EXPECT_EQ(net::send_exact(s, bytes.data(), bytes.size(), 2000),
              net::IoResult::kOk);
  }
  if (!read_reply) return net::Status::kOk;  // slam the connection shut
  char header[net::kFrameHeaderBytes];
  EXPECT_EQ(net::recv_exact(s, header, sizeof(header), 5000),
            net::IoResult::kOk);
  net::FrameHeader h;
  EXPECT_EQ(net::decode_header(std::string_view(header, sizeof(header)), h),
            net::Status::kOk);
  return h.status;
}

TEST(NetServer, MalformedFramesNeverKillTheServer) {
  ServerFixture fx;
  ASSERT_TRUE(fx.started);
  const std::uint16_t port = fx.server.port();
  const std::string valid =
      net::encode_frame(net::MsgType::kPing, net::Status::kOk, "x");

  // Truncated header, then disconnect.
  inject(port, valid.substr(0, 5), false);
  // Bad magic: diagnostic reply, then the server closes the connection.
  {
    std::string bad = valid;
    bad[0] = 'X';
    EXPECT_EQ(inject(port, bad, true), net::Status::kMalformed);
  }
  // Unknown version.
  {
    std::string bad = valid;
    bad[4] = 9;
    EXPECT_EQ(inject(port, bad, true), net::Status::kUnsupported);
  }
  // Over-limit announced length.
  {
    std::string bad = valid.substr(0, net::kFrameHeaderBytes);
    const std::uint32_t huge = net::kMaxPayloadBytes + 1;
    std::memcpy(bad.data() + 8, &huge, sizeof(huge));
    EXPECT_EQ(inject(port, bad, true), net::Status::kTooLarge);
  }
  // Mid-frame disconnect: header announces 64 payload bytes, 3 arrive.
  {
    std::string partial =
        net::encode_frame(net::MsgType::kQuery, net::Status::kOk,
                          std::string(64, 'z'))
            .substr(0, net::kFrameHeaderBytes + 3);
    inject(port, partial, false);
  }
  // Well-framed garbage: the header is fine, the QUERY body is not.
  {
    const std::string garbage = net::encode_frame(
        net::MsgType::kQuery, net::Status::kOk, "not a query");
    EXPECT_EQ(inject(port, garbage, true), net::Status::kMalformed);
  }
  // Instant disconnect without a single byte.
  inject(port, "", false);

  // After all of that the server still serves a well-behaved client.
  net::SkcClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port)) << client.last_error();
  EXPECT_TRUE(client.ping()) << client.last_error();
  const std::vector<Coord> p = {5, 7};
  EXPECT_TRUE(client.insert(p)) << client.last_error();
  net::QueryRequest qr;
  qr.summary_only = true;
  net::QueryReply reply;
  ASSERT_TRUE(client.query(qr, reply)) << client.last_error();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.net_points, 1);

  const EngineMetrics m = fx.server.metrics();
  EXPECT_GE(m.net_malformed_frames, 4);
}

// --------------------------------------------------------------------------
// Admission control.

TEST(NetServer, ConnectionLimitAnswersBusyAndCloses) {
  net::ServerOptions opts;
  opts.max_connections = 1;
  ServerFixture fx(opts);
  ASSERT_TRUE(fx.started);

  net::SkcClient first;
  ASSERT_TRUE(first.connect("127.0.0.1", fx.server.port()));
  ASSERT_TRUE(first.ping());  // guarantees the slot is held before we probe

  // The second connection gets exactly one BUSY frame, then EOF.
  std::string error;
  net::Socket probe = net::connect_to("127.0.0.1", fx.server.port(), 2000, error);
  ASSERT_TRUE(probe.valid()) << error;
  char header[net::kFrameHeaderBytes];
  ASSERT_EQ(net::recv_exact(probe, header, sizeof(header), 5000),
            net::IoResult::kOk);
  net::FrameHeader h;
  ASSERT_EQ(net::decode_header(std::string_view(header, sizeof(header)), h),
            net::Status::kOk);
  EXPECT_EQ(h.status, net::Status::kBusy);
  EXPECT_EQ(h.payload_bytes, 0u);
  char eof_probe = 0;
  EXPECT_EQ(net::recv_exact(probe, &eof_probe, 1, 5000), net::IoResult::kClosed);

  // The admitted client is unaffected.
  EXPECT_TRUE(first.ping()) << first.last_error();
  EXPECT_GE(fx.server.metrics().net_busy_rejections, 1);
}

TEST(NetServer, EngineBacklogShedsIngestWithBusy) {
  net::ServerOptions opts;
  opts.busy_backlog = 16;
  ClusteringEngine engine(kDim, test_params(), [] {
    EngineOptions opt = engine_options();
    opt.num_shards = 1;
    opt.worker_threads = 1;
    opt.queue_capacity = 1 << 15;
    opt.streaming.max_points = 8192;  // the big batch exceeds the default
    return opt;
  }());
  net::EngineServer server(engine, opts);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  // No automatic retries: the BUSY reply must surface directly.
  net::ClientOptions copts;
  copts.max_retries = 0;
  net::SkcClient client(copts);
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()));

  // One big batch swamps the single drain worker...
  Rng rng(3);
  std::vector<Coord> big;
  for (int i = 0; i < 4096 * kDim; ++i) {
    big.push_back(static_cast<Coord>(1 + rng.next_below(512)));
  }
  net::BatchReply ack;
  ASSERT_TRUE(client.insert_batch(kDim, big, &ack)) << client.last_error();
  EXPECT_EQ(ack.accepted, 4096u);

  // ...so the immediate follow-up is shed, not buffered.
  const std::vector<Coord> small = {1, 1};
  EXPECT_FALSE(client.insert_batch(kDim, small));
  EXPECT_EQ(client.last_status(), net::Status::kBusy);
  EXPECT_GE(server.metrics().net_busy_rejections, 1);

  // A barrier query drains the backlog; afterwards ingest is admitted again.
  net::QueryRequest qr;
  qr.summary_only = true;
  net::QueryReply reply;
  ASSERT_TRUE(client.query(qr, reply)) << client.last_error();
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.net_points, 4096);
  EXPECT_TRUE(client.insert_batch(kDim, small)) << client.last_error();

  server.stop();
  engine.shutdown();
}

// --------------------------------------------------------------------------
// Graceful drain.

TEST(NetServer, ObservabilityRpcsServeTraceAndPrometheus) {
  obs::Tracer::instance().clear();
  obs::Tracer::instance().set_enabled(true);
  ServerFixture fx;
  ASSERT_TRUE(fx.started);
  net::SkcClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()))
      << client.last_error();

  // Generate some traced, histogrammed work: a batch, a query, a ping.
  std::vector<Coord> coords;
  Rng rng(11);
  for (int i = 0; i < 200 * kDim; ++i) {
    coords.push_back(static_cast<Coord>(1 + rng.next_below(512)));
  }
  ASSERT_TRUE(client.insert_batch(kDim, coords)) << client.last_error();
  net::QueryRequest request;
  net::QueryReply reply;
  ASSERT_TRUE(client.query(request, reply)) << client.last_error();
  ASSERT_TRUE(client.ping()) << client.last_error();

  // TRACE_DUMP: connection threads ran under SKC_TRACE_SPAN("request"), so
  // the chrome JSON must carry request spans (and the engine's query span).
  std::string trace;
  ASSERT_TRUE(client.trace_json(trace)) << client.last_error();
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"query\""), std::string::npos);
  obs::Tracer::instance().set_enabled(false);

  // PROMETHEUS: the exposition reports the same requests the JSON metrics
  // count, and the request histogram saw every RPC answered so far.
  std::string prom;
  ASSERT_TRUE(client.prometheus_text(prom)) << client.last_error();
  EXPECT_NE(prom.find("# TYPE skc_op_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("skc_net_requests_total{type=\"trace_dump\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("skc_net_requests_total{type=\"query\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("skc_op_latency_seconds_count{op=\"query\"} 1"),
            std::string::npos);

  const EngineMetrics m = fx.server.metrics();
  // insert_batch + query + ping + trace_dump + prometheus, at least.
  EXPECT_GE(m.net_request_latency.count, 5);
  EXPECT_EQ(m.query_latency.count, 1);
  EXPECT_EQ(m.submit_latency.count, 1);
  // Both formats derive from the same histogram: JSON agrees with the
  // exposition on the query count.
  const std::string json = metrics_json(m);
  EXPECT_NE(json.find("\"query_latency_count\":1"), std::string::npos) << json;
  obs::Tracer::instance().clear();
}

TEST(NetServer, ShutdownDrainsFlushesAndCheckpoints) {
  const std::string snap = temp_path("net_server_drain_ckpt.bin");
  net::ServerOptions opts;
  opts.drain_checkpoint_path = snap;
  ServerFixture fx(opts);
  ASSERT_TRUE(fx.started);

  net::SkcClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", fx.server.port()));
  std::vector<Coord> coords;
  Rng rng(5);
  for (int i = 0; i < 300 * kDim; ++i) {
    coords.push_back(static_cast<Coord>(1 + rng.next_below(512)));
  }
  ASSERT_TRUE(client.insert_batch(kDim, coords)) << client.last_error();
  ASSERT_TRUE(client.shutdown_server()) << client.last_error();

  fx.server.wait();  // returns because the SHUTDOWN frame requested drain
  fx.server.stop();
  EXPECT_FALSE(fx.server.running());

  // Every accepted event was applied before the drain checkpoint.
  EXPECT_EQ(fx.engine.metrics().events_applied, 300);
  ClusteringEngine restored(kDim, test_params(), engine_options());
  ASSERT_TRUE(restored.restore(snap));
  EngineQuery q;
  q.summary_only = true;
  const EngineQueryResult res = restored.query(q);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.net_points, 300);
  restored.shutdown();

  // A drained server accepts no new connections.
  std::string error;
  net::Socket late = net::connect_to("127.0.0.1", fx.server.port(), 500, error);
  char byte = 0;
  EXPECT_TRUE(!late.valid() ||
              net::recv_exact(late, &byte, 1, 2000) != net::IoResult::kOk);

  // New ingest after drain is refused at the engine level, not crashed on:
  // stop() is idempotent.
  fx.server.stop();
}

}  // namespace
}  // namespace skc
