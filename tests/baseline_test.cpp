#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "skc/baseline/mapping_coreset.h"
#include "skc/baseline/uniform_coreset.h"
#include "skc/solve/cost.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

TEST(UniformCoreset, SizeAndExactTotalWeight) {
  Rng rng(1);
  PointSet pts = testutil::random_points(2, 256, 1000, rng);
  Rng crng(2);
  const Coreset coreset = uniform_coreset(pts, 64, crng);
  EXPECT_EQ(coreset.points.size(), 64);
  EXPECT_DOUBLE_EQ(coreset.total_weight(), 1000.0);
  EXPECT_TRUE(coreset.points.integral_weights());
}

TEST(UniformCoreset, ClampsToN) {
  Rng rng(3);
  PointSet pts = testutil::random_points(2, 64, 10, rng);
  Rng crng(4);
  const Coreset coreset = uniform_coreset(pts, 50, crng);
  EXPECT_EQ(coreset.points.size(), 10);
  EXPECT_DOUBLE_EQ(coreset.total_weight(), 10.0);
}

TEST(UniformCoreset, SamplesAreInputPoints) {
  Rng rng(5);
  PointSet pts = testutil::random_points(3, 128, 300, rng);
  Rng crng(6);
  const Coreset coreset = uniform_coreset(pts, 40, crng);
  auto input = testutil::canonical_multiset(pts);
  for (PointIndex i = 0; i < coreset.points.size(); ++i) {
    const auto p = coreset.points.point(i);
    EXPECT_TRUE(std::binary_search(input.begin(), input.end(),
                                   std::vector<Coord>(p.begin(), p.end())));
  }
}

TEST(UniformCoreset, UnbiasedUncapacitatedCost) {
  Rng rng(7);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 4;
  cfg.n = 4000;
  PointSet pts = gaussian_mixture(cfg, rng);
  PointSet centers = testutil::random_points(2, 1024, 4, rng);
  const double truth =
      uncapacitated_cost(WeightedPointSet::unit(pts), centers, LrOrder{2.0});
  // Average over several draws to beat sampling noise.
  double avg = 0.0;
  const int draws = 8;
  for (int i = 0; i < draws; ++i) {
    Rng crng(static_cast<std::uint64_t>(100 + i));
    const Coreset c = uniform_coreset(pts, 400, crng);
    avg += uncapacitated_cost(c.points, centers, LrOrder{2.0});
  }
  avg /= draws;
  EXPECT_NEAR(avg, truth, 0.15 * truth);
}

TEST(MappingCoreset, ProducesWeightedCentersSummingToN) {
  Rng rng(8);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 3;
  cfg.n = 2000;
  PointSet pts = gaussian_mixture(cfg, rng);
  Rng crng(9);
  const MappingCoresetResult result = mapping_coreset(pts, MappingCoresetOptions{}, crng);
  EXPECT_EQ(result.passes, 3);
  EXPECT_DOUBLE_EQ(result.coreset.total_weight(), 2000.0);
  EXPECT_LE(result.coreset.points.size(), 256 + 1);
  EXPECT_GT(result.coreset.points.size(), 0);
  EXPECT_GE(result.movement, 0.0);
}

TEST(MappingCoreset, MovementSmallOnTightClusters) {
  Rng rng(10);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 12;
  cfg.clusters = 3;
  cfg.n = 1000;
  cfg.spread = 0.002;  // very tight
  PointSet pts = gaussian_mixture(cfg, rng);
  Rng crng(11);
  MappingCoresetOptions opts;
  opts.max_centers = 64;
  const MappingCoresetResult result = mapping_coreset(pts, opts, crng);
  // Movement per point far below the inter-cluster scale (~0.1 Delta)^2.
  const double per_point = result.movement / 1000.0;
  EXPECT_LT(per_point, std::pow(0.05 * 4096.0, 2.0));
}

TEST(MappingCoreset, CapacitatedCostIsApproximatelyPreservedOnEasyData) {
  Rng rng(12);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 3;
  cfg.n = 600;
  cfg.spread = 0.01;
  PointSet pts = gaussian_mixture(cfg, rng);
  PointSet centers = testutil::random_points(2, 1024, 3, rng);
  Rng crng(13);
  const MappingCoresetResult mc = mapping_coreset(pts, MappingCoresetOptions{}, crng);
  const double t = tight_capacity(600, 3);
  const double full = capacitated_cost(pts, centers, t, LrOrder{2.0});
  const double approx = capacitated_cost(mc.coreset.points, centers, t, LrOrder{2.0});
  ASSERT_LT(full, kInfCost);
  ASSERT_LT(approx, kInfCost);
  // BBLM14-style guarantee: |approx - full| = O(movement + ...); sanity-check
  // a generous multiplicative envelope on clusterable data.
  EXPECT_LT(approx, 3.0 * full + 4.0 * mc.movement);
  EXPECT_GT(approx, full / 3.0 - 4.0 * mc.movement);
}

}  // namespace
}  // namespace skc
