#include "skc/stream/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "test_util.h"

namespace skc {
namespace {

TEST(Generators, MixtureSizeAndRange) {
  Rng rng(1);
  MixtureConfig cfg;
  cfg.dim = 3;
  cfg.log_delta = 8;
  cfg.clusters = 4;
  cfg.n = 500;
  const PointSet pts = gaussian_mixture(cfg, rng);
  EXPECT_EQ(pts.size(), 500);
  EXPECT_TRUE(pts.within_grid(256));
}

TEST(Generators, SkewProducesUnbalancedClusters) {
  Rng rng(2);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 4;
  cfg.n = 1000;
  cfg.skew = 2.0;
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  std::vector<int> sizes(4, 0);
  for (int label : planted.labels) {
    ASSERT_GE(label, 0);
    ++sizes[static_cast<std::size_t>(label)];
  }
  // (i+1)^-2 skew: cluster 0 dominates.
  EXPECT_GT(sizes[0], 3 * sizes[3]);
  EXPECT_EQ(sizes[0] + sizes[1] + sizes[2] + sizes[3], 1000);
}

TEST(Generators, ZeroSkewIsNearBalanced) {
  Rng rng(3);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 5;
  cfg.n = 1000;
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  std::vector<int> sizes(5, 0);
  for (int label : planted.labels) ++sizes[static_cast<std::size_t>(label)];
  for (int s : sizes) EXPECT_EQ(s, 200);
}

TEST(Generators, NoiseFractionIsLabeledMinusOne) {
  Rng rng(4);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 8;
  cfg.clusters = 2;
  cfg.n = 400;
  cfg.noise_fraction = 0.25;
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  const auto noise = std::count(planted.labels.begin(), planted.labels.end(), -1);
  EXPECT_EQ(noise, 100);
}

TEST(Generators, UniformPointsInGrid) {
  Rng rng(5);
  const PointSet pts = uniform_points(4, 6, 300, rng);
  EXPECT_EQ(pts.size(), 300);
  EXPECT_TRUE(pts.within_grid(64));
}

TEST(Streams, InsertionStreamSurvivorsAreInput) {
  Rng rng(6);
  const PointSet pts = testutil::random_points(2, 64, 100, rng);
  const Stream stream = insertion_stream(pts);
  EXPECT_EQ(stream.size(), 100u);
  EXPECT_EQ(testutil::canonical_multiset(surviving_points(stream, 2)),
            testutil::canonical_multiset(pts));
}

TEST(Streams, ChurnSurvivorsEqualBaseSet) {
  Rng rng(7);
  const PointSet base = testutil::random_points(2, 128, 200, rng);
  const PointSet extra = testutil::random_points(2, 128, 150, rng);
  Rng srng(8);
  const Stream stream = churn_stream(base, extra, ChurnConfig{}, srng);
  EXPECT_EQ(stream.size(), 200u + 2 * 150u);
  EXPECT_EQ(testutil::canonical_multiset(surviving_points(stream, 2)),
            testutil::canonical_multiset(base));
}

TEST(Streams, AdversarialChurnAlsoPreservesSurvivors) {
  Rng rng(9);
  const PointSet base = testutil::random_points(3, 64, 120, rng);
  const PointSet extra = testutil::random_points(3, 64, 120, rng);
  ChurnConfig cfg;
  cfg.adversarial = true;
  Rng srng(10);
  const Stream stream = churn_stream(base, extra, cfg, srng);
  EXPECT_EQ(testutil::canonical_multiset(surviving_points(stream, 3)),
            testutil::canonical_multiset(base));
  // Adversarial mode back-loads deletions: the tail of the stream should be
  // deletion-heavy.
  int tail_deletes = 0;
  for (std::size_t i = stream.size() - 60; i < stream.size(); ++i) {
    tail_deletes += stream[i].op == StreamOp::kDelete ? 1 : 0;
  }
  EXPECT_GT(tail_deletes, 40);
}

TEST(Streams, ShuffledInsertionsPermuteInput) {
  Rng rng(11);
  const PointSet pts = testutil::random_points(1, 32, 50, rng);
  Rng srng(12);
  const Stream stream = shuffled_insertions(pts, srng);
  EXPECT_EQ(stream.size(), 50u);
  for (const StreamEvent& e : stream) EXPECT_EQ(e.op, StreamOp::kInsert);
  EXPECT_EQ(testutil::canonical_multiset(surviving_points(stream, 1)),
            testutil::canonical_multiset(pts));
}

TEST(Streams, TenantChurnIsSkewedDeterministicAndNeverOverDeletes) {
  TenantChurnConfig cfg;
  cfg.tenants = 50;
  cfg.zipf = 1.2;
  cfg.batches = 400;
  cfg.batch_points = 8;
  cfg.delete_fraction = 0.2;
  cfg.mixture.dim = 2;
  cfg.mixture.log_delta = 9;
  cfg.mixture.clusters = 2;
  cfg.mixture.spread = 0.02;

  Rng rng(21);
  const std::vector<TenantBatch> batches = tenant_churn_stream(cfg, rng);
  ASSERT_EQ(batches.size(), 400u);

  // Same seed, same workload — the generator is deterministic.
  Rng rng2(21);
  const std::vector<TenantBatch> again = tenant_churn_stream(cfg, rng2);
  ASSERT_EQ(again.size(), batches.size());
  for (std::size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(again[i].tenant, batches[i].tenant);
    ASSERT_EQ(again[i].events.size(), batches[i].events.size());
  }

  // Per-tenant streams are valid (deletes never exceed inserts) and every
  // event stays on the grid.
  std::map<std::string, Stream> merged;
  const Coord delta = Coord{1} << cfg.mixture.log_delta;
  for (const TenantBatch& b : batches) {
    EXPECT_EQ(b.events.size(), 8u);
    for (const StreamEvent& e : b.events) {
      ASSERT_EQ(e.point.size(), 2u);
      for (Coord c : e.point) {
        EXPECT_GE(c, 1);
        EXPECT_LE(c, delta);
      }
      merged[b.tenant].push_back(e);
    }
  }
  std::size_t total_live = 0;
  for (const auto& [id, stream] : merged) {
    EXPECT_EQ(id.size(), 6u) << id;  // "t" + 5-digit rank
    total_live += static_cast<std::size_t>(surviving_points(stream, 2).size());
  }
  EXPECT_GT(total_live, 0u);

  // Zipf skew: rank 0 must be the hottest namespace by a wide margin, and
  // with 400 batches over 50 tenants the cold tail should stay untouched.
  ASSERT_TRUE(merged.count("t00000"));
  const std::size_t hot = merged.at("t00000").size();
  for (const auto& [id, stream] : merged) {
    EXPECT_LE(stream.size(), hot) << id;
  }
  EXPECT_LT(merged.size(), 50u);
}

TEST(Streams, OverDeletingDies) {
  Stream bad;
  bad.push_back(StreamEvent{StreamOp::kDelete, {1, 1}});
  EXPECT_DEATH(surviving_points(bad, 2), "");
}

}  // namespace
}  // namespace skc
