#include "skc/stream/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace skc {
namespace {

TEST(Generators, MixtureSizeAndRange) {
  Rng rng(1);
  MixtureConfig cfg;
  cfg.dim = 3;
  cfg.log_delta = 8;
  cfg.clusters = 4;
  cfg.n = 500;
  const PointSet pts = gaussian_mixture(cfg, rng);
  EXPECT_EQ(pts.size(), 500);
  EXPECT_TRUE(pts.within_grid(256));
}

TEST(Generators, SkewProducesUnbalancedClusters) {
  Rng rng(2);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 4;
  cfg.n = 1000;
  cfg.skew = 2.0;
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  std::vector<int> sizes(4, 0);
  for (int label : planted.labels) {
    ASSERT_GE(label, 0);
    ++sizes[static_cast<std::size_t>(label)];
  }
  // (i+1)^-2 skew: cluster 0 dominates.
  EXPECT_GT(sizes[0], 3 * sizes[3]);
  EXPECT_EQ(sizes[0] + sizes[1] + sizes[2] + sizes[3], 1000);
}

TEST(Generators, ZeroSkewIsNearBalanced) {
  Rng rng(3);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 5;
  cfg.n = 1000;
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  std::vector<int> sizes(5, 0);
  for (int label : planted.labels) ++sizes[static_cast<std::size_t>(label)];
  for (int s : sizes) EXPECT_EQ(s, 200);
}

TEST(Generators, NoiseFractionIsLabeledMinusOne) {
  Rng rng(4);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 8;
  cfg.clusters = 2;
  cfg.n = 400;
  cfg.noise_fraction = 0.25;
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  const auto noise = std::count(planted.labels.begin(), planted.labels.end(), -1);
  EXPECT_EQ(noise, 100);
}

TEST(Generators, UniformPointsInGrid) {
  Rng rng(5);
  const PointSet pts = uniform_points(4, 6, 300, rng);
  EXPECT_EQ(pts.size(), 300);
  EXPECT_TRUE(pts.within_grid(64));
}

TEST(Streams, InsertionStreamSurvivorsAreInput) {
  Rng rng(6);
  const PointSet pts = testutil::random_points(2, 64, 100, rng);
  const Stream stream = insertion_stream(pts);
  EXPECT_EQ(stream.size(), 100u);
  EXPECT_EQ(testutil::canonical_multiset(surviving_points(stream, 2)),
            testutil::canonical_multiset(pts));
}

TEST(Streams, ChurnSurvivorsEqualBaseSet) {
  Rng rng(7);
  const PointSet base = testutil::random_points(2, 128, 200, rng);
  const PointSet extra = testutil::random_points(2, 128, 150, rng);
  Rng srng(8);
  const Stream stream = churn_stream(base, extra, ChurnConfig{}, srng);
  EXPECT_EQ(stream.size(), 200u + 2 * 150u);
  EXPECT_EQ(testutil::canonical_multiset(surviving_points(stream, 2)),
            testutil::canonical_multiset(base));
}

TEST(Streams, AdversarialChurnAlsoPreservesSurvivors) {
  Rng rng(9);
  const PointSet base = testutil::random_points(3, 64, 120, rng);
  const PointSet extra = testutil::random_points(3, 64, 120, rng);
  ChurnConfig cfg;
  cfg.adversarial = true;
  Rng srng(10);
  const Stream stream = churn_stream(base, extra, cfg, srng);
  EXPECT_EQ(testutil::canonical_multiset(surviving_points(stream, 3)),
            testutil::canonical_multiset(base));
  // Adversarial mode back-loads deletions: the tail of the stream should be
  // deletion-heavy.
  int tail_deletes = 0;
  for (std::size_t i = stream.size() - 60; i < stream.size(); ++i) {
    tail_deletes += stream[i].op == StreamOp::kDelete ? 1 : 0;
  }
  EXPECT_GT(tail_deletes, 40);
}

TEST(Streams, ShuffledInsertionsPermuteInput) {
  Rng rng(11);
  const PointSet pts = testutil::random_points(1, 32, 50, rng);
  Rng srng(12);
  const Stream stream = shuffled_insertions(pts, srng);
  EXPECT_EQ(stream.size(), 50u);
  for (const StreamEvent& e : stream) EXPECT_EQ(e.op, StreamOp::kInsert);
  EXPECT_EQ(testutil::canonical_multiset(surviving_points(stream, 1)),
            testutil::canonical_multiset(pts));
}

TEST(Streams, OverDeletingDies) {
  Stream bad;
  bad.push_back(StreamEvent{StreamOp::kDelete, {1, 1}});
  EXPECT_DEATH(surviving_points(bad, 2), "");
}

}  // namespace
}  // namespace skc
