#include "skc/coreset/sampling.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace skc {
namespace {

TEST(Sampling, GridDerivationIsDeterministic) {
  const HierarchicalGrid a = make_grid(3, 8, 42);
  const HierarchicalGrid b = make_grid(3, 8, 42);
  EXPECT_TRUE(std::equal(a.shift().begin(), a.shift().end(), b.shift().begin()));
  const HierarchicalGrid c = make_grid(3, 8, 43);
  EXPECT_FALSE(std::equal(a.shift().begin(), a.shift().end(), c.shift().begin()));
}

TEST(Sampling, PurposesYieldIndependentHashes) {
  CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.2, 0.2);
  const auto counting = make_level_hashes(params, 6, SamplerPurpose::kCounting);
  const auto coreset = make_level_hashes(params, 6, SamplerPurpose::kCoreset);
  ASSERT_EQ(counting.size(), 7u);
  ASSERT_EQ(coreset.size(), 7u);
  PointSet p(2);
  p.push_back({17, 33});
  int equal = 0;
  for (std::size_t i = 0; i < counting.size(); ++i) {
    if (counting[i](p[0]) == coreset[i](p[0])) ++equal;
  }
  EXPECT_EQ(equal, 0);  // 7 collisions at 2^-61 each: never
}

TEST(Sampling, LevelHashesDifferAcrossLevels) {
  CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.2, 0.2);
  const auto hashes = make_level_hashes(params, 8, SamplerPurpose::kCoreset);
  PointSet p(2);
  p.push_back({5, 9});
  std::set<std::uint64_t> values;
  for (const auto& h : hashes) values.insert(h(p[0]));
  EXPECT_EQ(values.size(), hashes.size());
}

TEST(Sampling, SketchSeedsAreDistinct) {
  CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.2, 0.2);
  std::set<std::uint64_t> seeds;
  for (int guess = 0; guess < 8; ++guess) {
    for (int level = 0; level < 10; ++level) {
      seeds.insert(sketch_seed(params, guess, SamplerPurpose::kCounting, level));
      seeds.insert(sketch_seed(params, guess, SamplerPurpose::kCoreset, level));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 10u * 2u);
}

TEST(Sampling, SketchSeedDependsOnParamsSeed) {
  CoresetParams a = CoresetParams::practical(4, LrOrder{2.0}, 0.2, 0.2, 1);
  CoresetParams b = CoresetParams::practical(4, LrOrder{2.0}, 0.2, 0.2, 2);
  EXPECT_NE(sketch_seed(a, 0, SamplerPurpose::kCounting, 0),
            sketch_seed(b, 0, SamplerPurpose::kCounting, 0));
}

TEST(Sampling, KwiseKeepMatchesThreshold) {
  CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.2, 0.2);
  const auto hashes = make_level_hashes(params, 4, SamplerPurpose::kCoreset);
  Rng prng(7);
  PointSet pts = testutil::random_points(2, 256, 20000, prng);
  const SamplingRate rate = SamplingRate::from_probability(0.25);
  int kept = 0;
  for (PointIndex i = 0; i < pts.size(); ++i) {
    kept += kwise_keep(hashes[2], pts[i], rate) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(kept) / static_cast<double>(pts.size()), 0.25, 0.02);
  // Rate 1 keeps everything.
  const SamplingRate always = SamplingRate::from_probability(1.0);
  EXPECT_TRUE(kwise_keep(hashes[0], pts[0], always));
}

TEST(Sampling, NestedThresholdsAreMonotone) {
  // keep at rate 1/8 implies keep at rate 1/2 under the same hash — the
  // property that lets one hash serve every o-guess.
  CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.2, 0.2);
  const auto hashes = make_level_hashes(params, 4, SamplerPurpose::kCounting);
  Rng prng(9);
  PointSet pts = testutil::random_points(2, 512, 5000, prng);
  const SamplingRate fine = SamplingRate::from_probability(1.0 / 8.0);
  const SamplingRate coarse = SamplingRate::from_probability(1.0 / 2.0);
  for (PointIndex i = 0; i < pts.size(); ++i) {
    if (kwise_keep(hashes[1], pts[i], fine)) {
      EXPECT_TRUE(kwise_keep(hashes[1], pts[i], coarse));
    }
  }
}

}  // namespace
}  // namespace skc
