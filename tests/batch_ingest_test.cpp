// Batch-vs-pointwise determinism for the batched ingest hot path.
//
// The batch APIs (hash_batch / cell_index_of_batch / update_cells /
// update_batch, and StreamingCoresetBuilder::update_batch above them) claim
// to be pure reorganizations of the pointwise field operations: in exact
// mode AND in non-sampled sketch mode, feeding the same events through the
// batch path must leave every structure in a byte-identical serialized
// state.  These tests pin that claim at every layer, then bound the
// statistical error of the flag-gated sampled CountMin mode against the
// plain sketch at matched memory.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "skc/coreset/sampling.h"
#include "skc/coreset/streaming.h"
#include "skc/engine/engine.h"
#include "skc/grid/hierarchical_grid.h"
#include "skc/hash/kwise_hash.h"
#include "skc/sketch/countmin.h"
#include "skc/sketch/distinct.h"
#include "skc/sketch/point_store.h"
#include "skc/sketch/recovery.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

// ---------------------------------------------------------------------------
// Hash kernels: batch forms are bit-identical to the scalar loops.
// ---------------------------------------------------------------------------

TEST(BatchHash, FoldBatchMatchesScalar) {
  Rng rng(11);
  VectorFold fold(rng);
  const std::size_t len = 5, n = 67;  // non-multiple of the batch tile
  std::vector<Coord> keys(n * len);
  for (auto& c : keys) c = static_cast<Coord>(rng.uniform_int(-1000, 1000));
  std::vector<std::uint64_t> batch(n);
  fold.fold_batch(keys.data(), len, n, batch.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], fold(std::span<const Coord>(keys.data() + i * len, len)))
        << "lane " << i;
  }
}

TEST(BatchHash, FoldCellsBatchMatchesInt64Overload) {
  Rng rng(12);
  VectorFold fold(rng);
  const std::size_t len = 3, n = 40;
  std::vector<std::int32_t> keys(n * len);
  for (auto& c : keys) c = static_cast<std::int32_t>(rng.uniform_int(-512, 512));
  std::vector<std::uint64_t> batch(n);
  fold.fold_cells_batch(keys.data(), len, n, batch.data());
  std::vector<std::int64_t> wide(len);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < len; ++j) wide[j] = keys[i * len + j];
    EXPECT_EQ(batch[i], fold(std::span<const std::int64_t>(wide))) << "lane " << i;
  }
}

TEST(BatchHash, Fold64BatchMatchesInt64Overload) {
  Rng rng(13);
  VectorFold fold(rng);
  const std::size_t len = 4, n = 33;
  std::vector<std::int64_t> keys(n * len);
  for (auto& c : keys) c = rng.uniform_int(-100000, 100000);
  std::vector<std::uint64_t> batch(n);
  fold.fold64_batch(keys.data(), len, n, batch.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i],
              fold(std::span<const std::int64_t>(keys.data() + i * len, len)))
        << "lane " << i;
  }
}

TEST(BatchHash, EvalBatchMatchesScalar) {
  Rng rng(14);
  KWiseHash hash(8, rng);
  const std::size_t n = 100;
  std::vector<std::uint64_t> xs(n), expect(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.next() % f61::kP;
    expect[i] = hash.eval(xs[i]);
  }
  hash.eval_batch(xs.data(), n);
  EXPECT_EQ(xs, expect);
}

TEST(BatchHash, HashBatchMatchesScalar) {
  Rng rng(15);
  KWiseHash hash(6, rng);
  const std::size_t len = 2, n = 51;
  std::vector<Coord> keys(n * len);
  for (auto& c : keys) c = static_cast<Coord>(rng.uniform_int(1, 1 << 14));
  std::vector<std::uint64_t> batch(n);
  hash.hash_batch(keys.data(), len, n, batch.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], hash(std::span<const Coord>(keys.data() + i * len, len)))
        << "lane " << i;
  }
}

TEST(BatchGrid, CellIndexBatchMatchesPointwise) {
  const HierarchicalGrid grid = make_grid(3, 10, 77);
  Rng rng(16);
  const std::size_t n = 45;
  std::vector<Coord> pts(n * 3);
  for (auto& c : pts) c = static_cast<Coord>(rng.uniform_int(1, 1 << 10));
  std::vector<std::int32_t> batch(n * 3), one(3);
  for (int level = 0; level <= 10; level += 5) {
    grid.cell_index_of_batch(pts.data(), n, level, batch.data());
    for (std::size_t i = 0; i < n; ++i) {
      grid.cell_index_of(std::span<const Coord>(pts.data() + i * 3, 3), level,
                         one);
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(batch[i * 3 + j], one[j]) << "point " << i << " level " << level;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sketch structures: batch update == pointwise update, serialized bytes.
// ---------------------------------------------------------------------------

template <typename S>
std::string serialized(const S& s) {
  std::ostringstream out(std::ios::binary);
  s.save(out);
  return std::move(out).str();
}

struct CellEventBatch {
  std::vector<Coord> pts;          // n * dim
  std::vector<std::int32_t> idx;   // n * dim
  std::vector<std::int64_t> delta; // n
  std::size_t n = 0;
};

// Churny cell-event workload: random points, ~1/3 deletions of earlier points.
CellEventBatch make_cell_events(const HierarchicalGrid& grid, int level,
                                std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CellEventBatch out;
  const auto dim = static_cast<std::size_t>(grid.dim());
  out.n = n;
  out.pts.resize(n * dim);
  out.idx.resize(n * dim);
  out.delta.resize(n);
  std::vector<Coord> p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 4 && rng.uniform_int(0, 2) == 0) {
      // Delete a previously inserted point (keeps net counts >= 0 per point
      // in expectation; the structures tolerate any signed multiset anyway).
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::copy(out.pts.begin() + static_cast<std::ptrdiff_t>(j * dim),
                out.pts.begin() + static_cast<std::ptrdiff_t>((j + 1) * dim),
                out.pts.begin() + static_cast<std::ptrdiff_t>(i * dim));
      out.delta[i] = -1;
    } else {
      for (std::size_t d = 0; d < dim; ++d) {
        out.pts[i * dim + d] =
            static_cast<Coord>(rng.uniform_int(1, grid.delta()));
      }
      out.delta[i] = +1;
    }
  }
  grid.cell_index_of_batch(out.pts.data(), n, level, out.idx.data());
  return out;
}

TEST(BatchSketch, CountMinUpdateCellsMatchesPointwise) {
  const HierarchicalGrid grid = make_grid(2, 8, 5);
  const int level = 4;
  const CellEventBatch ev = make_cell_events(grid, level, 700, 21);
  for (const bool exact : {false, true}) {
    CellCountMinConfig cfg;
    cfg.width = 64;
    cfg.depth = 3;
    cfg.exact = exact;
    CellCountMin pointwise(grid, level, cfg, 99);
    CellCountMin batched(grid, level, cfg, 99);
    for (std::size_t i = 0; i < ev.n; ++i) {
      pointwise.update(std::span<const Coord>(ev.pts.data() + i * 2, 2),
                       ev.delta[i]);
    }
    // Feed in two unequal chunks to cross the internal tile boundary.
    batched.update_cells(ev.idx.data(), ev.delta.data(), 123);
    batched.update_cells(ev.idx.data() + 123 * 2, ev.delta.data() + 123,
                         ev.n - 123);
    EXPECT_EQ(serialized(batched), serialized(pointwise))
        << (exact ? "exact" : "sketch") << " mode";
    EXPECT_EQ(batched.events(), pointwise.events());
  }
}

TEST(BatchSketch, PointStoreUpdateBatchMatchesPointwiseIncludingEviction) {
  const HierarchicalGrid grid = make_grid(2, 8, 6);
  const int level = 5;
  const CellEventBatch ev = make_cell_events(grid, level, 900, 22);
  PointStoreConfig cfg;
  cfg.watermark = 4;  // force tombstoning mid-stream
  cfg.max_live_points = 1 << 12;
  for (const bool exact : {false, true}) {
    PointStoreConfig c = cfg;
    c.exact = exact;
    CellPointStore pointwise(grid, level, c);
    CellPointStore batched(grid, level, c);
    for (std::size_t i = 0; i < ev.n; ++i) {
      if (pointwise.dead()) break;
      pointwise.update(std::span<const Coord>(ev.pts.data() + i * 2, 2),
                       ev.delta[i]);
    }
    batched.update_batch(ev.pts.data(), ev.idx.data(), ev.delta.data(), ev.n);
    EXPECT_EQ(serialized(batched), serialized(pointwise))
        << (exact ? "exact" : "sketch") << " mode";
    EXPECT_EQ(batched.events(), pointwise.events());
    EXPECT_EQ(batched.dead(), pointwise.dead());
  }
}

TEST(BatchSketch, PointStoreBatchStopsCountingWhenDeadMidBatch) {
  const HierarchicalGrid grid = make_grid(2, 8, 7);
  const int level = 0;  // one coarse level: few cells, dies fast
  PointStoreConfig cfg;
  cfg.watermark = 1 << 20;
  cfg.max_live_points = 8;  // death after 8 live points
  const CellEventBatch ev = make_cell_events(grid, level, 64, 23);
  CellPointStore pointwise(grid, level, cfg);
  CellPointStore batched(grid, level, cfg);
  for (std::size_t i = 0; i < ev.n; ++i) {
    if (pointwise.dead()) break;  // the builder's caller-side check
    pointwise.update(std::span<const Coord>(ev.pts.data() + i * 2, 2),
                     ev.delta[i]);
  }
  batched.update_batch(ev.pts.data(), ev.idx.data(), ev.delta.data(), ev.n);
  ASSERT_TRUE(pointwise.dead());
  EXPECT_TRUE(batched.dead());
  EXPECT_EQ(batched.events(), pointwise.events());
  EXPECT_EQ(serialized(batched), serialized(pointwise));
}

TEST(BatchSketch, DistinctCellsUpdateBatchMatchesPointwise) {
  const HierarchicalGrid grid = make_grid(2, 8, 8);
  const int level = 6;
  const CellEventBatch ev = make_cell_events(grid, level, 800, 24);
  // Tiny budget so shrink_to_budget fires repeatedly mid-batch.
  DistinctCells pointwise(grid, level, 8, 55);
  DistinctCells batched(grid, level, 8, 55);
  for (std::size_t i = 0; i < ev.n; ++i) {
    pointwise.update(std::span<const Coord>(ev.pts.data() + i * 2, 2),
                     ev.delta[i]);
  }
  batched.update_batch(ev.idx.data(), ev.delta.data(), ev.n);
  EXPECT_EQ(serialized(batched), serialized(pointwise));
  EXPECT_DOUBLE_EQ(batched.estimate(), pointwise.estimate());
}

TEST(BatchSketch, SparseRecoveryUpdateBatchMatchesPointwise) {
  SparseRecovery::Config cfg;
  cfg.item_len = 3;
  cfg.capacity = 16;
  Rng rng(25);
  SparseRecovery pointwise(cfg, 77);
  SparseRecovery batched(cfg, 77);
  const std::size_t n = 50;
  std::vector<std::int64_t> items(n * 3), deltas(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      items[i * 3 + j] = rng.uniform_int(-20, 20);
    }
    deltas[i] = rng.uniform_int(-2, 3);  // includes delta == 0 rows
  }
  for (std::size_t i = 0; i < n; ++i) {
    pointwise.update(std::span<const std::int64_t>(items.data() + i * 3, 3),
                     deltas[i]);
  }
  batched.update_batch(items.data(), deltas.data(), n);
  const auto a = pointwise.decode();
  const auto b = batched.decode();
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a && b) {
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].item, (*b)[i].item);
      EXPECT_EQ((*a)[i].count, (*b)[i].count);
    }
  }
}

// ---------------------------------------------------------------------------
// Builder + engine determinism on a 10k-event churn stream.
// ---------------------------------------------------------------------------

Stream churn_10k(std::uint64_t seed) {
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 9;
  cfg.clusters = 3;
  cfg.n = 6000;
  cfg.spread = 0.02;
  cfg.skew = 1.0;
  Rng rng(seed);
  PointSet base = gaussian_mixture(cfg, rng);
  cfg.n = 2000;
  PointSet extra = gaussian_mixture(cfg, rng);
  Rng srng(seed + 1);
  return churn_stream(base, extra, ChurnConfig{}, srng);  // 10k events
}

StreamingOptions exact_options(PointIndex n) {
  StreamingOptions opt;
  opt.log_delta = 9;
  opt.max_points = n;
  opt.counting_samples = 1e18;
  opt.exact_storing = true;
  return opt;
}

StreamingOptions sketch_options(PointIndex n) {
  StreamingOptions opt;
  opt.log_delta = 9;
  opt.max_points = n;
  opt.prune_interval = 0;  // pruning fires at batch boundaries, so disable it
                           // for the strict byte-equality claim
  return opt;
}

TEST(BatchIngest, BuilderBatchBytesIdenticalToPointwiseEveryBatchSize) {
  const Stream stream = churn_10k(31);
  ASSERT_EQ(stream.size(), 10000u);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  for (const bool exact : {true, false}) {
    const StreamingOptions opt = exact
                                     ? exact_options(PointIndex(stream.size()))
                                     : sketch_options(PointIndex(stream.size()));
    StreamingCoresetBuilder pointwise(2, params, opt);
    for (const StreamEvent& e : stream) {
      pointwise.update(e.point, e.op == StreamOp::kInsert ? +1 : -1);
    }
    const std::string want = serialized(pointwise);
    for (const std::size_t bsz : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{256},
                                  std::size_t{1024}, stream.size()}) {
      StreamingCoresetBuilder batched(2, params, opt);
      for (std::size_t base = 0; base < stream.size(); base += bsz) {
        const std::size_t n = std::min(bsz, stream.size() - base);
        batched.update_batch(
            std::span<const StreamEvent>(stream.data() + base, n));
      }
      EXPECT_EQ(serialized(batched), want)
          << (exact ? "exact" : "sketch") << " mode, batch size " << bsz;
      EXPECT_EQ(batched.events(), pointwise.events());
      EXPECT_EQ(batched.net_count(), pointwise.net_count());
    }
  }
}

TEST(BatchIngest, EngineCoresetIdenticalToPointwiseBuilderEveryShardCount) {
  const Stream stream = churn_10k(32);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  const StreamingOptions opt = exact_options(PointIndex(stream.size()));

  StreamingCoresetBuilder reference(2, params, opt);
  for (const StreamEvent& e : stream) {
    reference.update(e.point, e.op == StreamOp::kInsert ? +1 : -1);
  }
  const StreamingResult want = reference.finalize();
  ASSERT_TRUE(want.ok);

  for (const int shards : {1, 2, 4, 8}) {
    EngineOptions eopt;
    eopt.num_shards = shards;
    eopt.worker_threads = 0;  // inline drains: deterministic
    eopt.streaming = opt;
    eopt.merge_mode = MergeMode::kSketch;
    ClusteringEngine engine(2, params, eopt);
    engine.submit(stream);
    EngineQuery q;
    q.summary_only = true;
    const EngineQueryResult got = engine.query(q);
    ASSERT_TRUE(got.ok) << got.error << " (shards " << shards << ")";
    EXPECT_DOUBLE_EQ(got.summary.o, want.coreset.o) << "shards " << shards;
    EXPECT_EQ(testutil::canonical_multiset(got.summary.points),
              testutil::canonical_multiset(want.coreset.points))
        << "shards " << shards;
  }
}

// ---------------------------------------------------------------------------
// Sampled CountMin: statistical error bound at matched memory.
// ---------------------------------------------------------------------------

TEST(SampledCountMin, ErrorBoundedVersusExactAtMatchedMemory) {
  const HierarchicalGrid grid = make_grid(2, 8, 9);
  const int level = 3;
  CellCountMinConfig cfg;
  cfg.width = 512;
  cfg.depth = 3;
  CellCountMinConfig scfg = cfg;
  scfg.sampled = true;  // same width * depth memory, sampled landing

  CellCountMin plain(grid, level, cfg, 123);
  CellCountMin sampled(grid, level, scfg, 123);
  std::unordered_map<CellKey, std::int64_t, CellKeyHash> truth;

  // Skewed workload: a handful of hot points carry most of the mass.
  Rng rng(33);
  const std::size_t kPoints = 64, kEvents = 60000;
  std::vector<Coord> pts(kPoints * 2);
  for (auto& c : pts) c = static_cast<Coord>(rng.uniform_int(1, 1 << 8));
  for (std::size_t e = 0; e < kEvents; ++e) {
    // Zipf-ish pick: index ~ min of two uniforms biases toward 0.
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kPoints) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kPoints) - 1));
    const std::size_t i = std::min(a, b);
    const std::span<const Coord> p(pts.data() + i * 2, 2);
    plain.update(p, +1);
    sampled.update(p, +1);
    truth[grid.cell_of(p, level)] += 1;
  }

  for (const auto& [key, count] : truth) {
    if (count < 2000) continue;  // bound the heavy hitters, where the
                                 // relative-error claim is meaningful
    const double t = static_cast<double>(count);
    // Plain CountMin estimates are one-sided (never undercount).
    EXPECT_GE(plain.query(key), t);
    EXPECT_LE(plain.query(key), 1.25 * t);
    // Sampled estimates are two-sided but concentrated: with depth 3 and
    // >= 2000 landings expected per heavy cell, 25% relative slack holds
    // with huge margin for the fixed seed.
    EXPECT_NEAR(sampled.query(key), t, 0.25 * t) << "cell count " << count;
  }

  // Raising the skip factor keeps estimates unbiased (looser tolerance:
  // variance grows by the skip).
  CellCountMin skipped(grid, level, scfg, 321);
  skipped.set_sample_skip(4);
  std::unordered_map<CellKey, std::int64_t, CellKeyHash> truth2;
  for (std::size_t e = 0; e < kEvents; ++e) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kPoints) / 8));
    const std::span<const Coord> p(pts.data() + i * 2, 2);
    skipped.update(p, +1);
    truth2[grid.cell_of(p, level)] += 1;
  }
  for (const auto& [key, count] : truth2) {
    if (count < 4000) continue;
    const double t = static_cast<double>(count);
    EXPECT_NEAR(skipped.query(key), t, 0.4 * t) << "cell count " << count;
  }
}

TEST(SampledCountMin, MergeRefusesMixedModes) {
  const HierarchicalGrid grid = make_grid(2, 6, 10);
  CellCountMinConfig cfg;
  cfg.width = 32;
  cfg.depth = 2;
  CellCountMinConfig scfg = cfg;
  scfg.sampled = true;
  CellCountMin plain(grid, 2, cfg, 1);
  CellCountMin sampled(grid, 2, scfg, 1);
  EXPECT_DEATH(plain.merge(sampled), "sampled");
}

TEST(SampledCountMin, ExactModeIgnoresSampledFlag) {
  const HierarchicalGrid grid = make_grid(2, 6, 11);
  CellCountMinConfig cfg;
  cfg.width = 32;
  cfg.depth = 2;
  cfg.exact = true;
  cfg.sampled = true;  // must be ignored: exact mode stays exact
  CellCountMin cm(grid, 2, cfg, 1);
  Rng rng(44);
  std::vector<Coord> p(2);
  std::unordered_map<CellKey, std::int64_t, CellKeyHash> truth;
  for (int e = 0; e < 500; ++e) {
    for (auto& c : p) c = static_cast<Coord>(rng.uniform_int(1, 1 << 6));
    cm.update(p, +1);
    truth[grid.cell_of(p, 2)] += 1;
  }
  for (const auto& [key, count] : truth) {
    EXPECT_DOUBLE_EQ(cm.query(key), static_cast<double>(count));
  }
}

}  // namespace
}  // namespace skc
