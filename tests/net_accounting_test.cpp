// The simulated coordinator network (src/skc/dist/) accounts every message
// at its on-wire size: payload + one frame header of the real TCP protocol
// (src/skc/net/frame.h).  These tests pin the accounting to the actual
// encoder — if the frame layout ever changes, the simulated communication
// costs of Theorem 4.7 move with it or these tests fail.
#include "skc/dist/network.h"

#include <gtest/gtest.h>

#include "skc/coreset/distributed.h"
#include "skc/net/frame.h"
#include "skc/stream/generators.h"

namespace skc {
namespace {

TEST(NetAccounting, SendChargesExactEncodedFrameSize) {
  Network net(2);
  std::uint64_t want_total = 0;
  std::uint64_t want_m1 = 0;
  for (const std::size_t payload : {std::size_t{0}, std::size_t{8},
                                    std::size_t{171}, std::size_t{4096}}) {
    // What this payload would actually occupy on the wire, by encoding it.
    const std::string frame = net::encode_frame(
        net::MsgType::kInsertBatch, net::Status::kOk, std::string(payload, 'b'));
    ASSERT_EQ(frame.size(), net::frame_wire_bytes(payload));
    net.send(1, 0, payload);
    want_total += frame.size();
    want_m1 += frame.size();
  }
  net.send(0, 2, 16);  // coordinator -> machine 2
  want_total += net::frame_wire_bytes(16);

  EXPECT_EQ(net.total().messages, 5u);
  EXPECT_EQ(net.total().bytes, want_total);
  EXPECT_EQ(net.machine_bytes(1), want_m1);
  EXPECT_EQ(net.machine_bytes(2), net::frame_wire_bytes(16));
  // The coordinator touches every message.
  EXPECT_EQ(net.machine_bytes(0), want_total);
}

TEST(NetAccounting, DistributedRoundReportsOnWireBytes) {
  // One full distributed build: its reported communication must be
  // message-count * header + payload bytes — i.e. strictly more than the
  // headerless payload sum, by exactly kFrameHeaderBytes per message.
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 9;
  cfg.clusters = 3;
  cfg.n = 600;
  cfg.spread = 0.02;
  cfg.skew = 1.0;
  Rng rng(4);
  const PointSet pts = gaussian_mixture(cfg, rng);
  std::vector<PointSet> machines(3, PointSet(cfg.dim));
  for (PointIndex i = 0; i < pts.size(); ++i) {
    machines[static_cast<std::size_t>(i % 3)].push_back(pts[i]);
  }

  DistributedOptions opt;
  opt.log_delta = 9;
  const DistributedResult res = build_distributed_coreset(
      machines, CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3), opt);
  ASSERT_TRUE(res.ok);
  ASSERT_GT(res.communication.messages, 0u);

  const std::uint64_t header_share =
      res.communication.messages * net::frame_wire_bytes(0);
  EXPECT_GT(res.communication.bytes, header_share);

  // Machine-side sums double-count coordinator bytes by construction:
  // every message involves rank 0, so sum(per-machine) == 2 * total.
  std::uint64_t machine_sum = 0;
  for (int m = 0; m <= 3; ++m) {
    machine_sum += res.per_machine_bytes[static_cast<std::size_t>(m)];
  }
  EXPECT_EQ(machine_sum, 2 * res.communication.bytes);
}

}  // namespace
}  // namespace skc
