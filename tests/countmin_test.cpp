#include "skc/sketch/countmin.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "test_util.h"

namespace skc {
namespace {

TEST(CellCountMin, ExactModeIsExact) {
  Rng rng(1);
  HierarchicalGrid grid(2, 8, rng);
  CellCountMinConfig cfg;
  cfg.exact = true;
  CellCountMin cm(grid, 4, cfg, 9);
  Rng prng(2);
  PointSet pts = testutil::random_points(2, 256, 300, prng);
  std::unordered_map<CellKey, std::int64_t, CellKeyHash> truth;
  for (PointIndex i = 0; i < pts.size(); ++i) {
    cm.update(pts[i], +1);
    truth[grid.cell_of(pts[i], 4)] += 1;
  }
  for (const auto& [cell, count] : truth) {
    EXPECT_DOUBLE_EQ(cm.query(cell), static_cast<double>(count));
  }
}

TEST(CellCountMin, SketchNeverUnderestimatesMuch) {
  Rng rng(3);
  HierarchicalGrid grid(2, 10, rng);
  CellCountMinConfig cfg;
  cfg.width = 1024;
  CellCountMin cm(grid, 6, cfg, 11);
  Rng prng(4);
  PointSet pts = testutil::random_points(2, 1024, 3000, prng);
  std::unordered_map<CellKey, std::int64_t, CellKeyHash> truth;
  for (PointIndex i = 0; i < pts.size(); ++i) {
    cm.update(pts[i], +1);
    truth[grid.cell_of(pts[i], 6)] += 1;
  }
  double total_over = 0.0;
  for (const auto& [cell, count] : truth) {
    const double est = cm.query(cell);
    // CountMin estimates are upper bounds on the true count (all deltas +1).
    EXPECT_GE(est, static_cast<double>(count));
    total_over += est - static_cast<double>(count);
  }
  // Average overestimate should be a small constant at this load factor.
  EXPECT_LT(total_over / static_cast<double>(truth.size()), 12.0);
}

TEST(CellCountMin, DeletionsCancel) {
  Rng rng(5);
  HierarchicalGrid grid(2, 6, rng);
  CellCountMinConfig cfg;
  cfg.width = 256;
  CellCountMin cm(grid, 3, cfg, 13);
  PointSet p(2);
  p.push_back({5, 5});
  p.push_back({60, 60});
  for (int i = 0; i < 10; ++i) cm.update(p[0], +1);
  for (int i = 0; i < 4; ++i) cm.update(p[0], -1);
  cm.update(p[1], +1);
  EXPECT_GE(cm.query(grid.cell_of(p[0], 3)), 6.0);
  EXPECT_LE(cm.query(grid.cell_of(p[0], 3)), 7.0 + 1e-9);  // +1 possible collision
}

TEST(CellCountMin, QueryUnseenCellIsSmall) {
  Rng rng(6);
  HierarchicalGrid grid(2, 8, rng);
  CellCountMinConfig cfg;
  cfg.width = 512;
  CellCountMin cm(grid, 5, cfg, 17);
  Rng prng(7);
  PointSet pts = testutil::random_points(2, 256, 200, prng);
  for (PointIndex i = 0; i < pts.size(); ++i) cm.update(pts[i], +1);
  // Probe cells far outside the data range.
  CellKey ghost;
  ghost.level = 5;
  ghost.index = {1000000, -1000000};
  EXPECT_LT(cm.query(ghost), 10.0);
}

TEST(CellCountMin, MergeEqualsConcatenation) {
  Rng rng(8);
  HierarchicalGrid grid(2, 7, rng);
  CellCountMinConfig cfg;
  cfg.width = 256;
  CellCountMin a(grid, 3, cfg, 21);
  CellCountMin b(grid, 3, cfg, 21);
  CellCountMin both(grid, 3, cfg, 21);
  Rng prng(9);
  PointSet pa = testutil::random_points(2, 128, 100, prng);
  PointSet pb = testutil::random_points(2, 128, 100, prng);
  for (PointIndex i = 0; i < pa.size(); ++i) {
    a.update(pa[i], +1);
    both.update(pa[i], +1);
  }
  for (PointIndex i = 0; i < pb.size(); ++i) {
    b.update(pb[i], +1);
    both.update(pb[i], +1);
  }
  a.merge(b);
  for (PointIndex i = 0; i < pa.size(); ++i) {
    const CellKey c = grid.cell_of(pa[i], 3);
    EXPECT_DOUBLE_EQ(a.query(c), both.query(c));
  }
}

TEST(CellCountMin, FixedMemory) {
  Rng rng(10);
  HierarchicalGrid grid(2, 10, rng);
  CellCountMinConfig cfg;
  cfg.width = 512;
  CellCountMin cm(grid, 6, cfg, 25);
  const std::size_t before = cm.memory_bytes();
  Rng prng(11);
  PointSet pts = testutil::random_points(2, 1024, 5000, prng);
  for (PointIndex i = 0; i < pts.size(); ++i) cm.update(pts[i], +1);
  EXPECT_EQ(cm.memory_bytes(), before);
}

}  // namespace
}  // namespace skc
