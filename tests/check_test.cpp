#include "skc/common/check.h"

#include <gtest/gtest.h>

namespace skc {
namespace {

TEST(Check, PassingConditionIsSilent) {
  int x = 3;
  SKC_CHECK(x == 3);
  SKC_CHECK_MSG(x > 0, "positive");
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAbortsWithCondition) {
  int x = 3;
  EXPECT_DEATH(SKC_CHECK(x == 4), "SKC_CHECK failed: x == 4");
}

TEST(CheckDeathTest, FailingCheckMsgAbortsWithMessage) {
  int x = -1;
  EXPECT_DEATH(SKC_CHECK_MSG(x >= 0, "index must be non-negative"),
               "index must be non-negative");
}

TEST(CheckDeathTest, CheckEvaluatesConditionExactlyOnce) {
  int calls = 0;
  SKC_CHECK(++calls == 1);
  EXPECT_EQ(calls, 1);
}

#ifdef NDEBUG
TEST(Dcheck, CompiledOutInReleaseButConditionStillParses) {
  // The condition must be referenced unevaluated: no side effects, no
  // unused-variable warnings for debug-only locals (the -Werror build of
  // this file is itself the regression test for the latter).
  int calls = 0;
  const int debug_only = 7;
  SKC_DCHECK(++calls == 1);
  SKC_DCHECK(debug_only > 0);
  SKC_DCHECK_MSG(++calls < 0, "never evaluated");
  EXPECT_EQ(calls, 0);
}
#else
TEST(DcheckDeathTest, FiresInDebugBuilds) {
  int x = 5;
  SKC_DCHECK(x == 5);
  EXPECT_DEATH(SKC_DCHECK(x == 6), "SKC_CHECK failed");
  EXPECT_DEATH(SKC_DCHECK_MSG(x == 6, "debug contract"), "debug contract");
}
#endif

}  // namespace
}  // namespace skc
