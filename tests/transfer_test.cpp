#include "skc/assign/transfer.h"

#include <gtest/gtest.h>

#include "skc/assign/capacitated_assignment.h"
#include "test_util.h"

namespace skc {
namespace {

/// Halfspaces splitting the line at x = 50 between centers 0 and 100.
AssignmentHalfspaces line_halfspaces() {
  PointSet pts(1);
  pts.push_back({10});
  pts.push_back({90});
  PointSet centers(1);
  centers.push_back({1});
  centers.push_back({100});
  std::vector<CenterIndex> assignment = {0, 1};
  return AssignmentHalfspaces::from_assignment(pts, centers, LrOrder{2.0}, assignment);
}

TEST(EstimateRegions, SumsWeightsPerRegion) {
  const auto hs = line_halfspaces();
  PointSet samples(1);
  samples.push_back({5});
  samples.push_back({20});
  samples.push_back({95});
  const std::vector<double> weights = {2.0, 3.0, 7.0};
  const RegionEstimates b = estimate_regions(hs, samples, weights);
  ASSERT_EQ(b.size(), 3u);  // R_0 + two centers
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 5.0);
  EXPECT_DOUBLE_EQ(b[2], 7.0);
}

TEST(TransferredCenter, KeepsPopulatedRegion) {
  const auto hs = line_halfspaces();
  RegionEstimates b = {0.0, 50.0, 40.0};
  TransferPolicy policy{0.01, 100.0};  // 2 xi T = 2
  PointSet p(1);
  p.push_back({10});
  p.push_back({95});
  EXPECT_EQ(transferred_center(hs, p[0], b, policy), 0);
  EXPECT_EQ(transferred_center(hs, p[1], b, policy), 1);
}

TEST(TransferredCenter, ReroutesEmptyRegionToHeaviest) {
  const auto hs = line_halfspaces();
  // Region 1 (center 0's side) below the 2 xi T threshold.
  RegionEstimates b = {0.0, 1.0, 90.0};
  TransferPolicy policy{0.05, 100.0};  // 2 xi T = 10 > 1
  PointSet p(1);
  p.push_back({10});  // geometrically on center 0's side
  EXPECT_EQ(transferred_center(hs, p[0], b, policy), 1);
}

TEST(TransferredCenter, ThresholdBoundaryIsInclusive) {
  const auto hs = line_halfspaces();
  TransferPolicy policy{0.05, 100.0};  // threshold = 10
  RegionEstimates b = {0.0, 10.0, 90.0};
  PointSet p(1);
  p.push_back({10});
  EXPECT_EQ(transferred_center(hs, p[0], b, policy), 0);  // b_i == 2 xi T keeps
}

TEST(TransferredAssignment, AppliesPointwise) {
  const auto hs = line_halfspaces();
  RegionEstimates b = {0.0, 50.0, 50.0};
  TransferPolicy policy{0.01, 100.0};
  PointSet pts(1);
  pts.push_back({2});
  pts.push_back({99});
  pts.push_back({45});
  const auto assignment = transferred_assignment(hs, pts, b, policy);
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(assignment[1], 1);
  EXPECT_EQ(assignment[2], 0);  // 45 < 50 midpoint
}

TEST(TransferredAssignment, Lemma312SizeDriftIsBounded) {
  // Build an optimal assignment, derive halfspaces, then perturb the region
  // estimates within the xi tolerance: the transferred assignment's size
  // vector should differ from the original by at most ~16 k xi * |P|.
  Rng rng(41);
  PointSet pts = testutil::random_points(2, 64, 40, rng);
  PointSet centers = testutil::random_points(2, 64, 4, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  const auto opt = optimal_capacitated_assignment(w, centers, 10.0, LrOrder{2.0});
  ASSERT_TRUE(opt.feasible);
  std::vector<CenterIndex> assignment = opt.assignment;
  canonicalize_assignment(pts, centers, LrOrder{2.0}, assignment);
  const auto hs =
      AssignmentHalfspaces::from_assignment(pts, centers, LrOrder{2.0}, assignment);

  const double T = 40.0;
  const double xi = 0.01;
  // Exact region counts, perturbed by +- xi T.
  RegionEstimates b(5, 0.0);
  for (PointIndex i = 0; i < pts.size(); ++i) {
    const CenterIndex region = hs.region_of(pts[i]);
    b[region == kUnassigned ? 0 : static_cast<std::size_t>(region) + 1] += 1.0;
  }
  Rng noise(43);
  for (auto& v : b) v = std::max(0.0, v + noise.uniform(-xi * T, xi * T));

  const auto transferred =
      transferred_assignment(hs, pts, b, TransferPolicy{xi, T});
  double drift = 0.0;
  std::vector<double> s_old(4, 0.0), s_new(4, 0.0);
  for (PointIndex i = 0; i < pts.size(); ++i) {
    s_old[static_cast<std::size_t>(assignment[static_cast<std::size_t>(i)])] += 1;
    s_new[static_cast<std::size_t>(transferred[static_cast<std::size_t>(i)])] += 1;
  }
  for (int c = 0; c < 4; ++c) {
    drift += std::abs(s_old[static_cast<std::size_t>(c)] - s_new[static_cast<std::size_t>(c)]);
  }
  EXPECT_LE(drift, 16.0 * 4 * xi * static_cast<double>(pts.size()) + 1e-9);
}

}  // namespace
}  // namespace skc
