// TenantRegistry: stream-id namespaces must be perfectly isolated (a tenant's
// query equals a dedicated single-tenant run), quotas must refuse with typed
// verdicts before touching state, the HLL ladder must promote without losing
// events, and LRU spill/restore must be transparent — including when the
// spill file is truncated or bit-flipped, which must be a typed error, never
// a crash.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "skc/tenant/registry.h"
#include "test_util.h"

namespace skc {
namespace {

using tenant::Admit;
using tenant::TenantRegistry;
using tenant::TenantRegistryOptions;
using tenant::TenantStats;

constexpr int kDim = 2;
constexpr int kLogDelta = 9;

TenantRegistryOptions base_options() {
  TenantRegistryOptions o;
  o.dim = kDim;
  o.params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  o.engine.num_shards = 1;
  o.engine.streaming.log_delta = kLogDelta;
  o.engine.streaming.max_points = 1024;
  // Exact mode + inline drains: every comparison below is deterministic.
  o.engine.streaming.exact_storing = true;
  o.engine.streaming.distinct_budget = 1 << 20;
  o.engine.streaming.prune_interval = 0;
  o.pool_threads = 0;
  // Ladder [64, 256, 1024]: promotion thresholds at 32 and 128 distinct.
  o.num_rungs = 3;
  o.rung_scale = 4;
  o.min_rung_points = 64;
  o.replay_capacity = 1 << 12;
  o.max_resident = 64;
  return o;
}

/// `n` distinct insertions, enumerated from `offset` (coords stay in
/// [1, 2^kLogDelta]).
Stream distinct_inserts(int n, int offset) {
  Stream s;
  s.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int v = offset + i;
    StreamEvent e;
    e.op = StreamOp::kInsert;
    e.point = {static_cast<Coord>(v % 511 + 1), static_cast<Coord>(v / 511 + 1)};
    s.push_back(std::move(e));
  }
  return s;
}

std::int64_t net_points(TenantRegistry& reg, std::string_view id) {
  EngineQuery q;
  q.summary_only = true;
  EngineQueryResult res;
  EXPECT_EQ(reg.query(id, q, res), Admit::kOk);
  EXPECT_TRUE(res.ok) << res.error;
  return res.net_points;
}

TenantStats stats_of(const TenantRegistry& reg, std::string_view id) {
  for (const TenantStats& t : reg.stats().per_tenant) {
    if (t.id == id) return t;
  }
  ADD_FAILURE() << "no stats for tenant " << id;
  return {};
}

TEST(TenantRegistry, NamespacesAreIsolatedAndDeterministic) {
  TenantRegistry shared(base_options());
  TenantRegistry alone(base_options());

  // Interleave two tenants in the shared registry; give a dedicated registry
  // only tenant "a".  The per-tenant seed is a pure function of the id, so
  // "a" must come out bit-identical either way.
  const Stream a1 = distinct_inserts(40, 0);
  const Stream b1 = distinct_inserts(70, 1000);
  const Stream a2 = distinct_inserts(25, 40);
  ASSERT_EQ(shared.submit("a", a1), Admit::kOk);
  ASSERT_EQ(shared.submit("b", b1), Admit::kOk);
  ASSERT_EQ(shared.submit("a", a2), Admit::kOk);
  ASSERT_EQ(alone.submit("a", a1), Admit::kOk);
  ASSERT_EQ(alone.submit("a", a2), Admit::kOk);

  EXPECT_EQ(net_points(shared, "a"), 65);
  EXPECT_EQ(net_points(shared, "b"), 70);
  EXPECT_EQ(shared.tenant_count(), 2);

  EngineQuery q;
  q.summary_only = true;
  EngineQueryResult sa, da;
  ASSERT_EQ(shared.query("a", q, sa), Admit::kOk);
  ASSERT_EQ(alone.query("a", q, da), Admit::kOk);
  ASSERT_TRUE(sa.ok && da.ok);
  EXPECT_EQ(testutil::canonical_multiset(sa.summary.points),
            testutil::canonical_multiset(da.summary.points));

  // The default tenant is just another namespace (the empty id).
  ASSERT_EQ(shared.submit("", distinct_inserts(5, 0)), Admit::kOk);
  EXPECT_EQ(net_points(shared, ""), 5);
  EXPECT_EQ(shared.tenant_count(), 3);
}

TEST(TenantRegistry, HllLadderPromotesWithoutLosingEvents) {
  TenantRegistry reg(base_options());
  ASSERT_EQ(reg.rungs().size(), 3u);
  EXPECT_EQ(reg.rungs()[0].max_points, 64);
  EXPECT_EQ(reg.rungs()[2].max_points, 1024);

  // 20 distinct points: under the rung-0 threshold (32), no promotion.
  ASSERT_EQ(reg.submit("t", distinct_inserts(20, 0)), Admit::kOk);
  TenantStats s = stats_of(reg, "t");
  EXPECT_EQ(s.rung, 0);
  EXPECT_EQ(s.promotions, 0);

  // 60 more distinct (~80 total): crosses 32, promotes exactly one rung.
  ASSERT_EQ(reg.submit("t", distinct_inserts(60, 20)), Admit::kOk);
  s = stats_of(reg, "t");
  EXPECT_EQ(s.rung, 1);
  EXPECT_EQ(s.promotions, 1);
  EXPECT_FALSE(s.sealed);
  EXPECT_EQ(net_points(reg, "t"), 80);

  // 100 more (~180 total): crosses 128, reaches the top rung; the replay
  // buffer is freed there but no event was lost on the way up.
  ASSERT_EQ(reg.submit("t", distinct_inserts(100, 80)), Admit::kOk);
  s = stats_of(reg, "t");
  EXPECT_EQ(s.rung, 2);
  EXPECT_EQ(s.promotions, 2);
  EXPECT_EQ(net_points(reg, "t"), 180);
  EXPECT_GT(s.hll_estimate, 150.0);
  EXPECT_LT(s.hll_estimate, 210.0);

  // The promoted tenant equals a dedicated full-size run of the same events.
  TenantRegistryOptions full = base_options();
  full.num_rungs = 1;
  TenantRegistry reference(full);
  ASSERT_EQ(reference.submit("t", distinct_inserts(180, 0)), Admit::kOk);
  EngineQuery q;
  q.summary_only = true;
  EngineQueryResult got, want;
  ASSERT_EQ(reg.query("t", q, got), Admit::kOk);
  ASSERT_EQ(reference.query("t", q, want), Admit::kOk);
  EXPECT_EQ(testutil::canonical_multiset(got.summary.points),
            testutil::canonical_multiset(want.summary.points));
}

TEST(TenantRegistry, ReplayOverflowSealsAtTheCurrentRung) {
  TenantRegistryOptions o = base_options();
  o.replay_capacity = 16;
  TenantRegistry reg(o);

  // A batch larger than the replay budget seals the tenant immediately (the
  // sketch still absorbs every event; only promotion stops).
  ASSERT_EQ(reg.submit("s", distinct_inserts(20, 0)), Admit::kOk);
  TenantStats s = stats_of(reg, "s");
  EXPECT_TRUE(s.sealed);
  EXPECT_EQ(s.rung, 0);
  EXPECT_EQ(net_points(reg, "s"), 20);

  // Far past every promotion threshold: a sealed tenant never climbs.
  ASSERT_EQ(reg.submit("s", distinct_inserts(200, 20)), Admit::kOk);
  s = stats_of(reg, "s");
  EXPECT_TRUE(s.sealed);
  EXPECT_EQ(s.rung, 0);
  EXPECT_EQ(s.promotions, 0);
  EXPECT_EQ(net_points(reg, "s"), 220);
}

TEST(TenantRegistry, TokenBucketThrottlesOnlyTheNoisyTenant) {
  TenantRegistryOptions o = base_options();
  o.quotas.max_events_per_second = 200.0;
  o.quotas.burst_events = 100.0;
  TenantRegistry reg(o);

  // The first batch drains the whole burst; refilling the 100 tokens the
  // follow-up needs takes 500ms, so the immediate retry is refused without
  // touching the engine.
  ASSERT_EQ(reg.submit("noisy", distinct_inserts(100, 0)), Admit::kOk);
  EXPECT_EQ(reg.submit("noisy", distinct_inserts(100, 100)), Admit::kQuota);
  TenantStats s = stats_of(reg, "noisy");
  EXPECT_EQ(s.events, 100);
  EXPECT_EQ(s.quota_rejections, 1);

  // Another tenant's bucket is its own: admitted concurrently.
  ASSERT_EQ(reg.submit("quiet", distinct_inserts(50, 0)), Admit::kOk);
  EXPECT_EQ(stats_of(reg, "quiet").quota_rejections, 0);

  // Refilled at 200 events/s, a guaranteed >=100ms nap buys back 20+
  // tokens — a small batch is admitted again.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(reg.submit("noisy", distinct_inserts(10, 100)), Admit::kOk);
}

TEST(TenantRegistry, TokenBucketAdmitsOversizeBatchAsDebt) {
  TenantRegistryOptions o = base_options();
  o.quotas.max_events_per_second = 200.0;
  o.quotas.burst_events = 20.0;
  TenantRegistry reg(o);

  // A batch larger than the burst can never be covered by a full bucket;
  // it must still be admitted (balance goes negative) rather than refused
  // on every retry forever.
  ASSERT_EQ(reg.submit("t", distinct_inserts(50, 0)), Admit::kOk);
  EXPECT_EQ(stats_of(reg, "t").events, 50);

  // The debt throttles what follows: even a batch the burst could normally
  // cover is refused until the 30-token deficit refills.
  EXPECT_EQ(reg.submit("t", distinct_inserts(20, 50)), Admit::kQuota);
  EXPECT_EQ(stats_of(reg, "t").quota_rejections, 1);
}

TEST(TenantRegistry, FootprintAndBacklogQuotasRefuseTyped) {
  TenantRegistryOptions o = base_options();
  o.quotas.max_sketch_bytes = 1;
  TenantRegistry tiny(o);
  // One byte of sketch budget: at the latest after the first admitted batch
  // the footprint exceeds it and ingest is refused, typed.
  const Admit first = tiny.submit("t", distinct_inserts(30, 0));
  ASSERT_TRUE(first == Admit::kOk || first == Admit::kQuota);
  EXPECT_EQ(tiny.submit("t", distinct_inserts(30, 30)), Admit::kQuota);
  EXPECT_GE(stats_of(tiny, "t").quota_rejections, 1);

  TenantRegistryOptions b = base_options();
  b.quotas.max_queued_events = 8;
  TenantRegistry backlog(b);
  // A batch that alone exceeds the queued-events cap is refused outright.
  EXPECT_EQ(backlog.submit("t", distinct_inserts(30, 0)), Admit::kQuota);
  EXPECT_EQ(stats_of(backlog, "t").events, 0);
}

TEST(TenantRegistry, LruEvictionSpillsAndRestoresTransparently) {
  TenantRegistryOptions o = base_options();
  o.max_resident = 2;
  o.spill_dir = ::testing::TempDir();
  TenantRegistry reg(o);

  // Four tenants, distinct sizes; only two engines may stay resident.
  for (int t = 0; t < 4; ++t) {
    const std::string id = "t" + std::to_string(t);
    ASSERT_EQ(reg.submit(id, distinct_inserts(10 + t, 100 * t)), Admit::kOk);
  }
  EXPECT_EQ(reg.tenant_count(), 4);
  EXPECT_LE(reg.resident_count(), 2);
  EXPECT_GE(reg.stats().evictions, 2);

  // Touching a spilled tenant restores it — same counts, no lost events —
  // and pushes someone else out.
  for (int t = 0; t < 4; ++t) {
    const std::string id = "t" + std::to_string(t);
    EXPECT_EQ(net_points(reg, id), 10 + t) << id;
    EXPECT_LE(reg.resident_count(), 2);
  }
  const tenant::RegistryStats s = reg.stats();
  EXPECT_GE(s.restores, 2);
  EXPECT_EQ(s.spill_failures, 0);

  // A restored tenant matches a never-evicted twin exactly.
  TenantRegistryOptions big = base_options();
  TenantRegistry reference(big);
  ASSERT_EQ(reference.submit("t3", distinct_inserts(13, 300)), Admit::kOk);
  EngineQuery q;
  q.summary_only = true;
  EngineQueryResult got, want;
  ASSERT_EQ(reg.query("t3", q, got), Admit::kOk);
  ASSERT_EQ(reference.query("t3", q, want), Admit::kOk);
  EXPECT_EQ(testutil::canonical_multiset(got.summary.points),
            testutil::canonical_multiset(want.summary.points));
}

TEST(TenantRegistry, CorruptSpillFilesAreTypedErrorsNeverCrashes) {
  TenantRegistryOptions o = base_options();
  o.max_resident = 1;
  o.spill_dir = ::testing::TempDir();
  TenantRegistry reg(o);

  ASSERT_EQ(reg.submit("victim", distinct_inserts(40, 0)), Admit::kOk);
  ASSERT_EQ(reg.submit("other", distinct_inserts(10, 500)), Admit::kOk);
  ASSERT_LE(reg.resident_count(), 1);

  const std::string path = o.spill_dir + "/victim.tnt";
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "expected the LRU victim to be spilled at " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    blob = buf.str();
  }
  // Spill layout: 21-byte header, then 40 replay events of 9 bytes each,
  // then the engine's CRC-framed save_state blob.
  const std::size_t engine_at = 21 + 40 * 9;
  ASSERT_GT(blob.size(), engine_at + 32);

  const auto rewrite = [&](const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  };
  EngineQuery q;
  q.summary_only = true;
  EngineQueryResult res;

  // Truncation sweep: header, replay section, engine payload, last byte.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{21}, engine_at + 5,
        blob.size() / 2, blob.size() - 1}) {
    rewrite(blob.substr(0, keep));
    EXPECT_EQ(reg.query("victim", q, res), Admit::kError) << "keep=" << keep;
  }
  // Bit flips in every validated field: the spill magic, the rung, the
  // engine magic, and two spots inside the engine's CRC-covered payload.
  // (A flip inside the raw replay coordinates is indistinguishable from
  // data, which is exactly why the engine section carries the CRC.)
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{9}, engine_at + 3,
        engine_at + (blob.size() - engine_at) / 2, blob.size() - 2}) {
    std::string bad = blob;
    bad[at] = static_cast<char>(bad[at] ^ 0x20);
    rewrite(bad);
    EXPECT_EQ(reg.query("victim", q, res), Admit::kError) << "at=" << at;
  }

  // The intact file still restores: corruption was detected, not "repaired".
  rewrite(blob);
  ASSERT_EQ(reg.query("victim", q, res), Admit::kOk);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.net_points, 40);
  std::remove(path.c_str());
}

TEST(TenantRegistry, AdmissionVerdictsAreTyped) {
  TenantRegistryOptions o = base_options();
  o.max_tenants = 2;
  TenantRegistry reg(o);

  EXPECT_EQ(reg.submit("bad/id", distinct_inserts(1, 0)), Admit::kInvalidId);
  EXPECT_EQ(reg.submit(std::string(65, 'a'), distinct_inserts(1, 0)),
            Admit::kInvalidId);

  EngineQuery q;
  EngineQueryResult res;
  EXPECT_EQ(reg.query("ghost", q, res), Admit::kUnknownTenant);
  EXPECT_EQ(reg.checkpoint("ghost", "/tmp/nope.bin"), Admit::kUnknownTenant);

  ASSERT_EQ(reg.submit("a", distinct_inserts(1, 0)), Admit::kOk);
  ASSERT_EQ(reg.submit("b", distinct_inserts(1, 1)), Admit::kOk);
  EXPECT_EQ(reg.submit("c", distinct_inserts(1, 2)), Admit::kTooManyTenants);
  EXPECT_FALSE(reg.exists("c"));
}

TEST(TenantRegistry, StatsJsonCarriesTheRegistryShape) {
  TenantRegistry reg(base_options());
  ASSERT_EQ(reg.submit("alpha", distinct_inserts(12, 0)), Admit::kOk);
  EngineQuery q;
  q.summary_only = true;
  EngineQueryResult res;
  ASSERT_EQ(reg.query("alpha", q, res), Admit::kOk);

  const std::string json = reg.stats_json();
  EXPECT_NE(json.find("\"tenants\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"per_tenant\":[{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":\"alpha\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"events\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ingest_count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"query_p99_ms\":"), std::string::npos) << json;

  std::string one;
  ASSERT_TRUE(reg.tenant_stats_json("alpha", one));
  EXPECT_NE(one.find("\"id\":\"alpha\""), std::string::npos) << one;
  EXPECT_FALSE(reg.tenant_stats_json("ghost", one));
}

}  // namespace
}  // namespace skc
