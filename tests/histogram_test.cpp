// Latency histogram (src/skc/obs/histogram.h): bucket geometry, exact
// linear merging, percentile sanity, and the wait-free recording contract
// under concurrency (this suite runs under both ASan and TSan in CI).
#include "skc/obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace skc::obs {
namespace {

TEST(Histogram, BucketBoundariesPartitionTheRange) {
  // Unit buckets: 0..15 map to themselves, width 1.
  for (std::int64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(histogram_bucket_of(v), static_cast<int>(v));
    EXPECT_EQ(histogram_bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(histogram_bucket_upper(static_cast<int>(v)), v + 1);
  }
  // Every bucket's bounds bracket every value mapped into it, buckets tile
  // the line with no gaps, and widths give <= 1/16 relative error.
  for (int b = 0; b < kHistogramBuckets - 1; ++b) {
    const std::int64_t lo = histogram_bucket_lower(b);
    const std::int64_t hi = histogram_bucket_upper(b);
    ASSERT_LT(lo, hi) << "bucket " << b;
    EXPECT_EQ(histogram_bucket_lower(b + 1), hi) << "gap after bucket " << b;
    EXPECT_EQ(histogram_bucket_of(lo), b);
    EXPECT_EQ(histogram_bucket_of(hi - 1), b);
    if (lo >= 16) {
      EXPECT_LE(hi - lo, lo / 16) << "bucket " << b << " too wide";
    }
  }
  // Spot values across magnitudes round-trip through their bucket.
  for (std::int64_t v : {std::int64_t{16}, std::int64_t{17}, std::int64_t{31},
                         std::int64_t{32}, std::int64_t{1000},
                         std::int64_t{123456789}, std::int64_t{1} << 40}) {
    const int b = histogram_bucket_of(v);
    EXPECT_LE(histogram_bucket_lower(b), v);
    EXPECT_GT(histogram_bucket_upper(b), v);
  }
  // Negative durations clamp into bucket 0.
  EXPECT_EQ(histogram_bucket_of(-5), 0);
}

TEST(Histogram, RecordTracksCountSumMinMaxLast) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  for (std::int64_t v : {7, 100, 3, 2500}) h.record_micros(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.sum_micros, 7 + 100 + 3 + 2500);
  EXPECT_EQ(s.min_micros, 3);
  EXPECT_EQ(s.max_micros, 2500);
  EXPECT_EQ(s.last_micros, 2500);
  EXPECT_DOUBLE_EQ(s.mean_micros(), (7 + 100 + 3 + 2500) / 4.0);

  h.reset();
  EXPECT_EQ(h.snapshot().count, 0);
  EXPECT_EQ(h.snapshot().max_micros, 0);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  LatencyHistogram a, b, c;
  for (int i = 1; i <= 100; ++i) a.record_micros(i);
  for (int i = 1000; i <= 1100; ++i) b.record_micros(i);
  c.record_micros(1 << 20);

  const HistogramSnapshot sa = a.snapshot(), sb = b.snapshot(),
                          sc = c.snapshot();
  // (a + b) + c
  HistogramSnapshot left = sa;
  left.merge(sb);
  left.merge(sc);
  // a + (b + c)
  HistogramSnapshot right_inner = sb;
  right_inner.merge(sc);
  HistogramSnapshot right = sa;
  right.merge(right_inner);
  // c + b + a (reordered)
  HistogramSnapshot rev = sc;
  rev.merge(sb);
  rev.merge(sa);

  for (const HistogramSnapshot* s : {&right, &rev}) {
    EXPECT_EQ(left.buckets, s->buckets);
    EXPECT_EQ(left.count, s->count);
    EXPECT_EQ(left.sum_micros, s->sum_micros);
    EXPECT_EQ(left.min_micros, s->min_micros);
    EXPECT_EQ(left.max_micros, s->max_micros);
  }
  EXPECT_EQ(left.count, 202);
  EXPECT_EQ(left.min_micros, 1);
  EXPECT_EQ(left.max_micros, 1 << 20);

  // merge_from on the recorder itself agrees with snapshot-level merging.
  LatencyHistogram folded;
  folded.merge_from(a);
  folded.merge_from(b);
  folded.merge_from(c);
  EXPECT_EQ(folded.snapshot().buckets, left.buckets);
  EXPECT_EQ(folded.snapshot().sum_micros, left.sum_micros);
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram a;
  for (int i : {5, 50, 500}) a.record_micros(i);
  HistogramSnapshot s = a.snapshot();
  const HistogramSnapshot empty = LatencyHistogram{}.snapshot();
  HistogramSnapshot merged = s;
  merged.merge(empty);
  EXPECT_EQ(merged.buckets, s.buckets);
  EXPECT_EQ(merged.min_micros, s.min_micros);
  EXPECT_EQ(merged.max_micros, s.max_micros);
  HistogramSnapshot other = empty;
  other.merge(s);
  EXPECT_EQ(other.count, s.count);
  EXPECT_EQ(other.min_micros, s.min_micros);
}

TEST(Histogram, PercentilesAreMonotoneAndBounded) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) h.record_micros(i);
  const HistogramSnapshot s = h.snapshot();
  double prev = 0.0;
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0}) {
    const double v = s.percentile_micros(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, static_cast<double>(s.min_micros));
    EXPECT_LE(v, static_cast<double>(s.max_micros));
    prev = v;
  }
  // A uniform 1..10000 distribution: the quantiles should sit within the
  // 6.25% bucket quantization of their exact positions.
  EXPECT_NEAR(s.percentile_micros(0.5), 5000.0, 5000.0 * 0.07);
  EXPECT_NEAR(s.percentile_micros(0.99), 9900.0, 9900.0 * 0.07);
  EXPECT_NEAR(s.p999_millis(), 9.990, 9.990 * 0.07);
}

TEST(Histogram, PercentileOfSingleValueIsThatValue) {
  LatencyHistogram h;
  h.record_micros(777);
  const HistogramSnapshot s = h.snapshot();
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.percentile_micros(q), 777.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(LatencyHistogram{}.snapshot().percentile_micros(0.5), 0.0);
}

TEST(Histogram, UnitConversionsLandInTheRightBuckets) {
  LatencyHistogram h;
  h.record_millis(1.5);    // 1500 us
  h.record_seconds(0.002); // 2000 us
  h.record_millis(-3.0);   // clamps to 0
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.min_micros, 0);
  EXPECT_EQ(s.max_micros, 2000);
  EXPECT_EQ(s.buckets[static_cast<std::size_t>(histogram_bucket_of(1500))], 1);
}

TEST(Histogram, ConcurrentRecordersLoseNothing) {
  // The wait-free contract: N threads hammering one histogram must account
  // for every recording exactly (count, sum, and bucket mass all conserve).
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record_micros(1 + ((t * kPerThread + i) % 5000));
      }
    });
  }
  // Concurrent snapshots must be race-free (values advisory, reads clean).
  std::thread reader([&h] {
    for (int i = 0; i < 50; ++i) {
      const HistogramSnapshot s = h.snapshot();
      EXPECT_GE(s.count, 0);
      EXPECT_GE(s.sum_micros, 0);
    }
  });
  for (auto& t : threads) t.join();
  reader.join();

  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::int64_t>(kThreads) * kPerThread);
  std::int64_t bucket_mass = 0;
  for (std::int64_t b : s.buckets) bucket_mass += b;
  EXPECT_EQ(bucket_mass, s.count);
  EXPECT_EQ(s.min_micros, 1);
  EXPECT_EQ(s.max_micros, 5000);
}

TEST(Histogram, RecorderTimesItsScope) {
  LatencyHistogram h;
  {
    LatencyRecorder probe(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(probe.elapsed_micros(), 0);
  }
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.count, 1);
  EXPECT_GE(s.max_micros, 1000);  // slept >= 2 ms; allow heavy scheduling slop
}

}  // namespace
}  // namespace skc::obs
