#include "skc/coreset/compose.h"

#include <gtest/gtest.h>

#include "skc/coreset/sampling.h"
#include "skc/solve/cost.h"
#include "skc/solve/kmeanspp.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

MixtureConfig mixture(int n) {
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 3;
  cfg.n = n;
  cfg.spread = 0.02;
  cfg.skew = 1.2;
  return cfg;
}

TEST(WeightedCoreset, UnitWeightsMatchUnweightedBuild) {
  Rng rng(1);
  PointSet pts = gaussian_mixture(mixture(1500), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult plain = build_offline_coreset(pts, params, 10);
  const OfflineBuildResult weighted =
      build_weighted_coreset(WeightedPointSet::unit(pts), params, 10);
  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(weighted.ok);
  EXPECT_DOUBLE_EQ(plain.coreset.o, weighted.coreset.o);
  EXPECT_EQ(testutil::canonical_multiset(plain.coreset.points),
            testutil::canonical_multiset(weighted.coreset.points));
}

TEST(WeightedCoreset, WeightedInputMatchesExpandedInput) {
  // A point of weight w must behave like w unit copies: build on the
  // expanded set and on the compact weighted set; accepted o must agree and
  // total weights must match closely (sampling decisions are per distinct
  // coordinate vector, so the coresets agree exactly).
  Rng rng(2);
  PointSet base = gaussian_mixture(mixture(400), rng);
  WeightedPointSet compact(2);
  PointSet expanded(2);
  Rng wrng(3);
  for (PointIndex i = 0; i < base.size(); ++i) {
    const double w = static_cast<double>(wrng.uniform_int(1, 3));
    compact.push_back(base[i], w);
    for (int c = 0; c < static_cast<int>(w); ++c) expanded.push_back(base[i]);
  }
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult from_compact = build_weighted_coreset(compact, params, 10);
  const OfflineBuildResult from_expanded = build_offline_coreset(expanded, params, 10);
  ASSERT_TRUE(from_compact.ok);
  ASSERT_TRUE(from_expanded.ok);
  EXPECT_DOUBLE_EQ(from_compact.coreset.o, from_expanded.coreset.o);
  EXPECT_DOUBLE_EQ(from_compact.coreset.total_weight(),
                   from_expanded.coreset.total_weight());
}

TEST(WeightedCoreset, RejectsFractionalWeights) {
  WeightedPointSet w(2);
  const std::vector<Coord> p = {5, 5};
  w.push_back(p, 1.5);
  const CoresetParams params = CoresetParams::practical(2, LrOrder{2.0}, 0.3, 0.3);
  const HierarchicalGrid grid = make_grid(2, 6, params.seed);
  EXPECT_DEATH(build_weighted_coreset_at(w, grid, params, 100.0), "");
}

TEST(Composer, SummaryWeightTracksInput) {
  Rng rng(4);
  PointSet pts = gaussian_mixture(mixture(6000), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  CoresetComposer::Options opt;
  opt.log_delta = 10;
  opt.block_size = 1024;
  CoresetComposer composer(2, params, opt);
  composer.insert_all(pts);
  const auto coreset = composer.finalize();
  ASSERT_TRUE(coreset.has_value());
  EXPECT_EQ(composer.points_seen(), pts.size());
  EXPECT_GT(composer.reductions(), 4);  // blocks + tier merges + final
  EXPECT_NEAR(coreset->total_weight(), 6000.0, 2400.0);
  EXPECT_LT(coreset->points.size(), pts.size() / 2);
  EXPECT_TRUE(coreset->points.integral_weights());
}

TEST(Composer, QualityEnvelopeSurvivesComposition) {
  Rng rng(5);
  PointSet pts = gaussian_mixture(mixture(4000), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  CoresetComposer::Options opt;
  opt.log_delta = 10;
  opt.block_size = 1000;
  CoresetComposer composer(2, params, opt);
  composer.insert_all(pts);
  const auto coreset = composer.finalize();
  ASSERT_TRUE(coreset.has_value());

  // Compare capacitated costs (with the relaxed-capacity two-sided rule)
  // against the full data at a k-means++ probe; composition compounds the
  // error, so the envelope is looser than a one-shot build but must stay
  // within a small constant.
  Rng prng(6);
  const PointSet centers =
      kmeanspp_seed(WeightedPointSet::unit(pts), 3, LrOrder{2.0}, prng);
  const double n = static_cast<double>(pts.size());
  const double w = coreset->total_weight();
  const double t = tight_capacity(n, 3) * 1.2;
  const double relax = 1.3;
  const double full_t = capacitated_cost(pts, centers, t, LrOrder{2.0});
  const double full_relaxed =
      capacitated_cost(pts, centers, t * relax * relax, LrOrder{2.0});
  const double summary =
      capacitated_cost(coreset->points, centers, (t * w / n) * relax, LrOrder{2.0});
  ASSERT_LT(summary, kInfCost);
  EXPECT_LT(summary, 1.8 * full_t);
  EXPECT_GT(summary, full_relaxed / 1.8);
}

TEST(Composer, PeakMemoryStaysBelowInput) {
  Rng rng(7);
  PointSet pts = gaussian_mixture(mixture(8000), rng);
  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  CoresetComposer::Options opt;
  opt.log_delta = 10;
  opt.block_size = 512;
  CoresetComposer composer(2, params, opt);
  composer.insert_all(pts);
  const auto coreset = composer.finalize();
  ASSERT_TRUE(coreset.has_value());
  const std::size_t raw =
      static_cast<std::size_t>(pts.size()) * 2 * sizeof(Coord);
  EXPECT_LT(composer.peak_memory_bytes(), raw);
}

}  // namespace
}  // namespace skc
