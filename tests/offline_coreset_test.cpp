#include "skc/coreset/offline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "skc/solve/cost.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

MixtureConfig small_mixture(int n = 2000) {
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 4;
  cfg.n = n;
  cfg.spread = 0.02;
  cfg.skew = 1.0;
  return cfg;
}

TEST(OfflineCoreset, BuildsOnMixture) {
  Rng rng(1);
  PointSet pts = gaussian_mixture(small_mixture(), rng);
  const CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult result = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.coreset.points.size(), 0);
  EXPECT_GT(result.coreset.o, 0.0);
  EXPECT_TRUE(result.coreset.points.integral_weights());
}

TEST(OfflineCoreset, CoresetIsASubsetOfInput) {
  Rng rng(2);
  PointSet pts = gaussian_mixture(small_mixture(1000), rng);
  const CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult result = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(result.ok);

  std::set<std::vector<Coord>> input;
  for (PointIndex i = 0; i < pts.size(); ++i) {
    const auto p = pts[i];
    input.insert(std::vector<Coord>(p.begin(), p.end()));
  }
  for (PointIndex i = 0; i < result.coreset.points.size(); ++i) {
    const auto p = result.coreset.points.point(i);
    EXPECT_TRUE(input.count(std::vector<Coord>(p.begin(), p.end())))
        << "coreset point " << to_string(p) << " not in input";
  }
}

TEST(OfflineCoreset, TotalWeightApproximatesN) {
  Rng rng(3);
  PointSet pts = gaussian_mixture(small_mixture(4000), rng);
  const CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult result = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(result.ok);
  // Unbiased estimator of the kept-part mass; dropped parts are small, so
  // the total should be within a modest factor of n.
  EXPECT_NEAR(result.coreset.total_weight(), static_cast<double>(pts.size()),
              0.35 * static_cast<double>(pts.size()));
}

TEST(OfflineCoreset, TheoryParamsKeepEveryPointOfIncludedParts) {
  // With the paper's constants phi_i == 1, so every surviving part is kept
  // verbatim with weight 1: the coreset is exact on kept parts.
  Rng rng(4);
  PointSet pts = gaussian_mixture(small_mixture(500), rng);
  const CoresetParams params = CoresetParams::theory(4, 2, 10, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult result = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(result.ok);
  for (PointIndex i = 0; i < result.coreset.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.coreset.points.weight(i), 1.0);
  }
  // gamma with theory constants is astronomically small -> no part dropped:
  // the coreset IS the input (as a multiset).
  EXPECT_EQ(testutil::canonical_multiset(result.coreset.points.points()),
            testutil::canonical_multiset(pts));
}

TEST(OfflineCoreset, SmallestNonFailingGuessIsChosen) {
  Rng rng(5);
  PointSet pts = gaussian_mixture(small_mixture(1500), rng);
  const CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult result = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(result.ok);
  // Diagnostics: every guess before the accepted one failed.
  const auto& outcomes = result.diagnostics.guess_outcomes;
  const auto ok_pos = std::find(outcomes.begin(), outcomes.end(), "ok");
  ASSERT_NE(ok_pos, outcomes.end());
  for (auto it = outcomes.begin(); it != ok_pos; ++it) EXPECT_NE(*it, "ok");
  EXPECT_EQ(result.diagnostics.guesses_tried.size(), outcomes.size());
}

TEST(OfflineCoreset, SizeIsSublinearInN) {
  // E1's claim in miniature: quadrupling n should not quadruple the coreset.
  Rng rng(6);
  const CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.3, 0.3);
  PointSet small = gaussian_mixture(small_mixture(2000), rng);
  PointSet large = gaussian_mixture(small_mixture(8000), rng);
  const auto rs = build_offline_coreset(small, params, 10);
  const auto rl = build_offline_coreset(large, params, 10);
  ASSERT_TRUE(rs.ok);
  ASSERT_TRUE(rl.ok);
  EXPECT_LT(static_cast<double>(rl.coreset.points.size()),
            2.5 * static_cast<double>(std::max<PointIndex>(rs.coreset.points.size(), 50)));
}

TEST(OfflineCoreset, DeterministicForSeed) {
  Rng rng(7);
  PointSet pts = gaussian_mixture(small_mixture(800), rng);
  const CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.3, 0.3);
  const auto a = build_offline_coreset(pts, params, 10);
  const auto b = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.coreset.points, b.coreset.points);
  EXPECT_EQ(a.coreset.o, b.coreset.o);
}

TEST(OfflineCoreset, LevelsAlignWithWeights) {
  Rng rng(8);
  PointSet pts = gaussian_mixture(small_mixture(1200), rng);
  const CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.3, 0.3);
  const auto result = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(static_cast<PointIndex>(result.coreset.levels.size()),
            result.coreset.points.size());
  for (PointIndex i = 0; i < result.coreset.points.size(); ++i) {
    const int level = result.coreset.levels[static_cast<std::size_t>(i)];
    ASSERT_GE(level, 0);
    ASSERT_LE(level, 10);
    EXPECT_DOUBLE_EQ(result.coreset.points.weight(i),
                     result.coreset.level_weights[static_cast<std::size_t>(level)]);
  }
}

TEST(MaxOptGuess, MatchesFormula) {
  // n * (sqrt(d) * Delta)^r.
  EXPECT_DOUBLE_EQ(max_opt_guess(10, 4, 3, LrOrder{2.0}), 10.0 * 4.0 * 64.0);
  EXPECT_DOUBLE_EQ(max_opt_guess(5, 1, 2, LrOrder{1.0}), 5.0 * 4.0);
}

class OfflineCoresetOrderTest : public ::testing::TestWithParam<double> {};

TEST_P(OfflineCoresetOrderTest, BuildsAcrossLrOrders) {
  const LrOrder r{GetParam()};
  Rng rng(static_cast<std::uint64_t>(9 + static_cast<int>(GetParam() * 7)));
  PointSet pts = gaussian_mixture(small_mixture(1500), rng);
  const CoresetParams params = CoresetParams::practical(4, r, 0.3, 0.3);
  const OfflineBuildResult result = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(result.ok) << "r = " << r.r;
  EXPECT_GT(result.coreset.points.size(), 20);
  EXPECT_LT(result.coreset.points.size(), pts.size());
}

INSTANTIATE_TEST_SUITE_P(Orders, OfflineCoresetOrderTest,
                         ::testing::Values(1.0, 2.0, 3.0));

}  // namespace
}  // namespace skc
