#include "skc/flow/mcmf.h"

#include <gtest/gtest.h>

namespace skc {
namespace {

TEST(MinCostMaxFlow, SingleEdge) {
  MinCostMaxFlow f(2);
  const int e = f.add_edge(0, 1, 5, 2.0);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 5);
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
  EXPECT_EQ(f.flow_on(e), 5);
}

TEST(MinCostMaxFlow, PrefersCheapPath) {
  // Two parallel paths 0->1->3 (cost 1) and 0->2->3 (cost 10); capacity
  // forces a split only past the cheap path's limit.
  MinCostMaxFlow f(4);
  f.add_edge(0, 1, 3, 0.5);
  f.add_edge(1, 3, 3, 0.5);
  f.add_edge(0, 2, 10, 5.0);
  f.add_edge(2, 3, 10, 5.0);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 13);
  EXPECT_DOUBLE_EQ(r.cost, 3 * 1.0 + 10 * 10.0);
}

TEST(MinCostMaxFlow, ResidualReroutingFindsOptimum) {
  // Classic case where a later augmentation must push flow back along a
  // used edge: checks the residual (negative-cost) arcs work via potentials.
  MinCostMaxFlow f(4);
  // s=0, t=3.
  f.add_edge(0, 1, 1, 1.0);
  f.add_edge(0, 2, 1, 4.0);
  f.add_edge(1, 2, 1, 1.0);
  f.add_edge(1, 3, 1, 6.0);
  f.add_edge(2, 3, 2, 1.0);
  const auto r = f.solve(0, 3);
  EXPECT_EQ(r.flow, 2);
  // Optimal: 0-1-2-3 (3) and 0-2-3 (5) = 8 total, cheaper than using 1-3.
  EXPECT_DOUBLE_EQ(r.cost, 8.0);
}

TEST(MinCostMaxFlow, DisconnectedSinkZeroFlow) {
  MinCostMaxFlow f(3);
  f.add_edge(0, 1, 4, 1.0);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 0);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(MinCostMaxFlow, ZeroCapacityEdgeIgnored) {
  MinCostMaxFlow f(2);
  f.add_edge(0, 1, 0, 1.0);
  const auto r = f.solve(0, 1);
  EXPECT_EQ(r.flow, 0);
}

TEST(MinCostMaxFlow, BipartiteTransportMatchesHandComputation) {
  // 2 suppliers (3, 2 units) x 2 consumers (cap 3, 2); costs:
  //   a->x 1, a->y 4, b->x 2, b->y 1.
  // Optimum: a->x 3 (3), b->y 2 (2) = 5.
  MinCostMaxFlow f(6);  // 0 src, 1 a, 2 b, 3 x, 4 y, 5 sink
  f.add_edge(0, 1, 3, 0);
  f.add_edge(0, 2, 2, 0);
  f.add_edge(1, 3, 3, 1.0);
  f.add_edge(1, 4, 3, 4.0);
  f.add_edge(2, 3, 2, 2.0);
  f.add_edge(2, 4, 2, 1.0);
  f.add_edge(3, 5, 3, 0);
  f.add_edge(4, 5, 2, 0);
  const auto r = f.solve(0, 5);
  EXPECT_EQ(r.flow, 5);
  EXPECT_DOUBLE_EQ(r.cost, 5.0);
}

TEST(MinCostMaxFlow, AddNodeExtendsGraph) {
  MinCostMaxFlow f(1);
  const int n1 = f.add_node();
  const int n2 = f.add_node();
  EXPECT_EQ(f.num_nodes(), 3);
  f.add_edge(0, n1, 2, 1.0);
  f.add_edge(n1, n2, 2, 1.0);
  const auto r = f.solve(0, n2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
}

TEST(MinCostMaxFlow, LargeBottleneckSinglePath) {
  // One augmentation should carry the full bottleneck (no per-unit loop).
  MinCostMaxFlow f(3);
  f.add_edge(0, 1, 1000000, 0.25);
  f.add_edge(1, 2, 999999, 0.75);
  const auto r = f.solve(0, 2);
  EXPECT_EQ(r.flow, 999999);
  EXPECT_DOUBLE_EQ(r.cost, 999999.0);
}

TEST(MinCostMaxFlow, RejectsNegativeCost) {
  MinCostMaxFlow f(2);
  EXPECT_DEATH(f.add_edge(0, 1, 1, -1.0), "");
}

}  // namespace
}  // namespace skc
