#include "skc/assign/construct.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "skc/coreset/offline.h"
#include "skc/geometry/metric.h"
#include "skc/solve/capacitated_kmeans.h"
#include "skc/solve/cost.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

struct Fixture {
  PointSet points;
  CoresetParams params;
  Coreset coreset;
  PointSet centers;
  double t = 0.0;

  static Fixture make(int n, int k, std::uint64_t seed) {
    Fixture f;
    Rng rng(seed);
    MixtureConfig cfg;
    cfg.dim = 2;
    cfg.log_delta = 9;
    cfg.clusters = k;
    cfg.n = n;
    cfg.spread = 0.02;
    cfg.skew = 1.2;
    f.points = gaussian_mixture(cfg, rng);
    f.params = CoresetParams::practical(k, LrOrder{2.0}, 0.3, 0.3);
    const OfflineBuildResult built = build_offline_coreset(f.points, f.params, 9);
    EXPECT_TRUE(built.ok);
    f.coreset = built.coreset;
    f.t = tight_capacity(static_cast<double>(n), k) * 1.1;
    Rng solver_rng(seed + 1);
    CapacitatedSolverOptions opts;
    const double coreset_t =
        f.t * f.coreset.total_weight() / static_cast<double>(n);
    const CapacitatedSolution sol = capacitated_kmeans(
        f.coreset.points, k, coreset_t, LrOrder{2.0}, opts, solver_rng);
    EXPECT_TRUE(sol.feasible);
    f.centers = sol.centers;
    return f;
  }
};

TEST(AssignViaCoreset, ProducesFeasibleFullAssignment) {
  Fixture f = Fixture::make(1500, 3, 11);
  const FullAssignment full =
      assign_via_coreset(f.points, f.params, 9, f.coreset, f.centers, f.t);
  ASSERT_TRUE(full.feasible);
  ASSERT_EQ(static_cast<PointIndex>(full.assignment.size()), f.points.size());
  for (CenterIndex c : full.assignment) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
  EXPECT_GT(full.cost, 0.0);
  EXPECT_EQ(full.transferred_points + full.fallback_points, f.points.size());
  EXPECT_GT(full.transferred_points, full.fallback_points);
}

TEST(AssignViaCoreset, LoadsStayNearCapacity) {
  Fixture f = Fixture::make(1800, 3, 13);
  const FullAssignment full =
      assign_via_coreset(f.points, f.params, 9, f.coreset, f.centers, f.t);
  ASSERT_TRUE(full.feasible);
  // (1 + O(eta)) violation: allow a generous practical envelope.
  EXPECT_LE(full.max_load, 1.8 * f.t);
}

TEST(AssignViaCoreset, CostWithinFactorOfExactAssignment) {
  Fixture f = Fixture::make(1200, 3, 17);
  const FullAssignment full =
      assign_via_coreset(f.points, f.params, 9, f.coreset, f.centers, f.t);
  ASSERT_TRUE(full.feasible);
  // Exact optimal capacitated assignment for the same centers/capacity.
  const double exact = capacitated_cost(WeightedPointSet::unit(f.points), f.centers,
                                        std::floor(full.max_load) + 1, LrOrder{2.0});
  ASSERT_LT(exact, kInfCost);
  EXPECT_LE(full.cost, 2.5 * exact + 1e-9);
  EXPECT_GE(full.cost, exact - 1e-6);
}

TEST(AssignViaCoreset, TransferBeatsNaiveNearestUnderTightCapacity) {
  // With skewed clusters and near-tight capacity, nearest-center assignment
  // violates capacity badly; the transferred assignment must do better on
  // the max-load while staying cost-comparable.
  Fixture f = Fixture::make(1500, 3, 19);
  const FullAssignment full =
      assign_via_coreset(f.points, f.params, 9, f.coreset, f.centers, f.t);
  ASSERT_TRUE(full.feasible);

  std::vector<double> nearest_loads(3, 0.0);
  for (PointIndex i = 0; i < f.points.size(); ++i) {
    nearest_loads[static_cast<std::size_t>(
        nearest_center(f.points[i], f.centers, LrOrder{2.0}).index)] += 1.0;
  }
  const double nearest_max =
      *std::max_element(nearest_loads.begin(), nearest_loads.end());
  if (nearest_max > 1.2 * f.t) {
    EXPECT_LT(full.max_load, nearest_max);
  }
}

}  // namespace
}  // namespace skc
