#include "skc/sketch/hll.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "skc/common/random.h"

namespace skc {
namespace {

std::uint64_t hash_of(std::uint64_t x) {
  std::uint64_t state = x ^ 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

TEST(HyperLogLog, SmallRangeIsNearExact) {
  HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < 100; ++i) hll.add_hash(hash_of(i));
  // Linear-counting regime: well under 1% error at n << m.
  EXPECT_NEAR(hll.estimate(), 100.0, 2.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 50; ++rep) {
    for (std::uint64_t i = 0; i < 64; ++i) hll.add_hash(hash_of(i));
  }
  EXPECT_NEAR(hll.estimate(), 64.0, 2.0);
}

TEST(HyperLogLog, LargeRangeWithinRelativeError) {
  HyperLogLog hll(12);
  const std::uint64_t n = 200'000;
  for (std::uint64_t i = 0; i < n; ++i) hll.add_hash(hash_of(i));
  // Theory: sigma ~= 1.04 / sqrt(2^12) ~= 1.6%; allow 5 sigma.
  const double err = std::abs(hll.estimate() - static_cast<double>(n)) /
                     static_cast<double>(n);
  EXPECT_LT(err, 0.08);
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a(10), b(10), u(10);
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    a.add_hash(hash_of(i));
    u.add_hash(hash_of(i));
  }
  for (std::uint64_t i = 2'500; i < 8'000; ++i) {
    b.add_hash(hash_of(i));
    u.add_hash(hash_of(i));
  }
  ASSERT_TRUE(a.merge(b));
  // Register-wise max makes the merge exact: identical to the union sketch.
  EXPECT_DOUBLE_EQ(a.estimate(), u.estimate());
}

TEST(HyperLogLog, MergeRefusesPrecisionMismatch) {
  HyperLogLog a(10), b(12);
  b.add_hash(hash_of(1));
  EXPECT_FALSE(a.merge(b));
  EXPECT_DOUBLE_EQ(a.estimate(), 0.0);
}

TEST(HyperLogLog, SaveLoadRoundTrip) {
  HyperLogLog hll(11);
  for (std::uint64_t i = 0; i < 10'000; ++i) hll.add_hash(hash_of(i));
  std::ostringstream out(std::ios::binary);
  hll.save(out);
  const std::string blob = std::move(out).str();

  HyperLogLog restored(11);
  std::istringstream in(blob, std::ios::binary);
  ASSERT_TRUE(restored.load(in));
  EXPECT_DOUBLE_EQ(restored.estimate(), hll.estimate());

  // Precision mismatch and truncation both fail closed.
  HyperLogLog wrong(12);
  std::istringstream in2(blob, std::ios::binary);
  EXPECT_FALSE(wrong.load(in2));
  std::istringstream in3(blob.substr(0, blob.size() / 2), std::ios::binary);
  HyperLogLog truncated(11);
  EXPECT_FALSE(truncated.load(in3));
}

TEST(HyperLogLog, ResetClears) {
  HyperLogLog hll(8);
  for (std::uint64_t i = 0; i < 1'000; ++i) hll.add_hash(hash_of(i));
  EXPECT_GT(hll.estimate(), 100.0);
  hll.reset();
  EXPECT_DOUBLE_EQ(hll.estimate(), 0.0);
}

}  // namespace
}  // namespace skc
