// ClusteringEngine: sharded ingest must be a semantics-free optimization —
// the merged sketch equals a single-shard run on the same stream — and the
// serving-layer features (epoch queries, checkpoint/restore, backpressure,
// concurrent ingest) must hold up under threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "skc/coreset/streaming.h"
#include "skc/engine/engine.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

constexpr int kDim = 2;
constexpr int kLogDelta = 9;

MixtureConfig mixture(int n) {
  MixtureConfig cfg;
  cfg.dim = kDim;
  cfg.log_delta = kLogDelta;
  cfg.clusters = 3;
  cfg.n = n;
  cfg.spread = 0.02;
  cfg.skew = 1.0;
  return cfg;
}

CoresetParams test_params() {
  return CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
}

StreamingOptions streaming_options(bool exact) {
  StreamingOptions opt;
  opt.log_delta = kLogDelta;
  opt.max_points = 4000;
  opt.exact_storing = exact;
  // A budget the distinct estimators never outgrow at this workload size:
  // keeps them fully linear, so the sharded merge is bit-exact.
  opt.distinct_budget = 1 << 20;
  opt.prune_interval = 0;
  return opt;
}

EngineOptions engine_options(int shards, bool exact, int workers = 2) {
  EngineOptions opt;
  opt.num_shards = shards;
  opt.worker_threads = workers;
  opt.streaming = streaming_options(exact);
  return opt;
}

Stream churn_workload(int base_n, int extra_n, std::uint64_t seed) {
  Rng rng(seed);
  PointSet base = gaussian_mixture(mixture(base_n), rng);
  PointSet extra = gaussian_mixture(mixture(extra_n), rng);
  Rng srng(seed + 1);
  return churn_stream(base, extra, ChurnConfig{}, srng);
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// The headline property: a 4-shard engine (events hash-routed, applied by
// concurrent workers, sketches merged at query time) produces EXACTLY the
// coreset of one StreamingCoresetBuilder fed the stream serially.  Exact
// mode makes every structure a plain linear map, so equality is bit-level.
TEST(Engine, ShardedMergeMatchesSingleShardReference) {
  const Stream stream = churn_workload(1200, 600, 11);
  const CoresetParams params = test_params();

  StreamingCoresetBuilder reference(kDim, params, streaming_options(true));
  reference.consume(stream);
  const StreamingResult want = reference.finalize();
  ASSERT_TRUE(want.ok);

  ClusteringEngine engine(kDim, params, engine_options(4, /*exact=*/true));
  engine.submit(stream);
  EngineQuery q;
  q.summary_only = true;
  const EngineQueryResult got = engine.query(q);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.net_points, reference.net_count());
  EXPECT_DOUBLE_EQ(got.summary.o, want.coreset.o);
  EXPECT_EQ(testutil::canonical_multiset(got.summary.points),
            testutil::canonical_multiset(want.coreset.points));
}

// Same property for the practical (sketch-mode) structures on an
// insertion-only stream: CountMin counters add, point-store evictions are
// threshold checks on linear totals, so the merge is still order-free.
TEST(Engine, ShardedMergeMatchesReferenceInSketchMode) {
  Rng rng(21);
  const PointSet pts = gaussian_mixture(mixture(1500), rng);
  const Stream stream = insertion_stream(pts);
  const CoresetParams params = test_params();

  StreamingCoresetBuilder reference(kDim, params, streaming_options(false));
  reference.consume(stream);
  const StreamingResult want = reference.finalize();
  ASSERT_TRUE(want.ok);

  ClusteringEngine engine(kDim, params, engine_options(4, /*exact=*/false));
  engine.submit(stream);
  EngineQuery q;
  q.summary_only = true;
  const EngineQueryResult got = engine.query(q);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_DOUBLE_EQ(got.summary.o, want.coreset.o);
  EXPECT_EQ(testutil::canonical_multiset(got.summary.points),
            testutil::canonical_multiset(want.coreset.points));
}

// Shard count must not matter either: 1-shard and 8-shard engines agree.
TEST(Engine, ShardCountInvariance) {
  const Stream stream = churn_workload(800, 400, 31);
  const CoresetParams params = test_params();

  ClusteringEngine one(kDim, params, engine_options(1, /*exact=*/true));
  ClusteringEngine eight(kDim, params, engine_options(8, /*exact=*/true));
  one.submit(stream);
  eight.submit(stream);
  EngineQuery q;
  q.summary_only = true;
  const EngineQueryResult a = one.query(q);
  const EngineQueryResult b = eight.query(q);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(testutil::canonical_multiset(a.summary.points),
            testutil::canonical_multiset(b.summary.points));
}

// Full query path: merged summary + capacitated solve under concurrent use.
TEST(Engine, QuerySolvesBalancedClustering) {
  const Stream stream = churn_workload(1200, 400, 41);
  ClusteringEngine engine(kDim, test_params(), engine_options(4, /*exact=*/true));
  engine.submit(stream);
  EngineQuery q;
  q.capacity_slack = 1.3;
  const EngineQueryResult result = engine.query(q);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.solution.feasible);
  EXPECT_EQ(result.solution.centers.size(), 3);
  EXPECT_GT(result.capacity, 0.0);
  EXPECT_GT(result.summary.points.size(), 0);
}

// Compose-mode merge (per-shard finalize + weighted union) must also serve
// queries; it is the lossier but cheaper merge strategy.
TEST(Engine, ComposeMergeServesQueries) {
  const Stream stream = churn_workload(1200, 400, 51);
  EngineOptions opt = engine_options(4, /*exact=*/true);
  opt.merge_mode = MergeMode::kCompose;
  ClusteringEngine engine(kDim, test_params(), opt);
  engine.submit(stream);
  const EngineQueryResult result = engine.query(EngineQuery{});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.solution.feasible);
  EXPECT_EQ(result.net_points, 1200);
  // The union's total weight stays an unbiased estimate of n.
  EXPECT_GT(result.summary.points.total_weight(), 0.0);
}

TEST(Engine, CheckpointRestoreRoundTrip) {
  const Stream stream = churn_workload(1000, 500, 61);
  const CoresetParams params = test_params();
  const std::string path = temp_path("engine_ckpt.bin");

  // Uninterrupted run.
  ClusteringEngine full(kDim, params, engine_options(4, /*exact=*/true));
  full.submit(stream);
  EngineQuery q;
  q.summary_only = true;
  const EngineQueryResult want = full.query(q);
  ASSERT_TRUE(want.ok) << want.error;

  // First half -> checkpoint.
  ClusteringEngine first(kDim, params, engine_options(4, /*exact=*/true));
  const std::size_t half = stream.size() / 2;
  Stream head(stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(half));
  first.submit(head);
  ASSERT_TRUE(first.checkpoint(path));
  EXPECT_GT(first.metrics().last_checkpoint_bytes, 0);

  // Restore into a fresh engine, feed the rest.
  ClusteringEngine second(kDim, params, engine_options(4, /*exact=*/true));
  ASSERT_TRUE(second.restore(path));
  EXPECT_EQ(second.net_count(), first.net_count());
  Stream tail(stream.begin() + static_cast<std::ptrdiff_t>(half), stream.end());
  second.submit(tail);
  const EngineQueryResult got = second.query(q);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_DOUBLE_EQ(got.summary.o, want.summary.o);
  EXPECT_EQ(testutil::canonical_multiset(got.summary.points),
            testutil::canonical_multiset(want.summary.points));
  std::remove(path.c_str());
}

TEST(Engine, RestoreRejectsTruncationWithoutCrashing) {
  const Stream stream = churn_workload(600, 300, 71);
  const CoresetParams params = test_params();
  const std::string path = temp_path("engine_trunc.bin");

  ClusteringEngine engine(kDim, params, engine_options(2, /*exact=*/true));
  engine.submit(stream);
  ASSERT_TRUE(engine.checkpoint(path));

  // Truncate the file at 60%.
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(blob.size(), 16u);
  blob.resize(blob.size() * 3 / 5);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }

  ClusteringEngine fresh(kDim, params, engine_options(2, /*exact=*/true));
  EXPECT_FALSE(fresh.restore(path));
  // The failed restore leaves the engine fully usable.
  fresh.submit(stream);
  EngineQuery q;
  q.summary_only = true;
  EXPECT_TRUE(fresh.query(q).ok);
  std::remove(path.c_str());
}

TEST(Engine, RestoreRejectsMismatchedConfiguration) {
  const Stream stream = churn_workload(600, 300, 81);
  const CoresetParams params = test_params();
  const std::string path = temp_path("engine_mismatch.bin");

  ClusteringEngine engine(kDim, params, engine_options(2, /*exact=*/true));
  engine.submit(stream);
  ASSERT_TRUE(engine.checkpoint(path));

  // Different shard count.
  ClusteringEngine other_shards(kDim, params, engine_options(4, /*exact=*/true));
  EXPECT_FALSE(other_shards.restore(path));

  // Different seed.
  CoresetParams other_params = params;
  other_params.seed = params.seed + 1;
  ClusteringEngine other_seed(kDim, other_params, engine_options(2, /*exact=*/true));
  EXPECT_FALSE(other_seed.restore(path));

  // Garbage header.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "definitely not a checkpoint";
  }
  ClusteringEngine garbage(kDim, params, engine_options(2, /*exact=*/true));
  EXPECT_FALSE(garbage.restore(path));
  EXPECT_FALSE(garbage.restore(temp_path("engine_no_such_file.bin")));
  std::remove(path.c_str());
}

// Many producers, small queues (forcing backpressure), queries racing the
// ingest: nothing deadlocks, every event lands, the barrier is exact.
TEST(Engine, ConcurrentIngestStress) {
  const CoresetParams params = test_params();
  EngineOptions opt = engine_options(4, /*exact=*/false, /*workers=*/3);
  opt.queue_capacity = 64;  // exercise producer blocking
  ClusteringEngine engine(kDim, params, opt);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2500;
  std::atomic<int> ready{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&engine, &ready, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      const PointSet pts =
          testutil::random_points(kDim, Coord{1} << kLogDelta, kPerProducer, rng);
      ready.fetch_add(1);
      for (PointIndex i = 0; i < pts.size(); ++i) engine.insert(pts[i]);
    });
  }
  // Queries concurrent with ingest (no barrier: snapshot whatever applied).
  std::thread querier([&engine] {
    EngineQuery q;
    q.summary_only = true;
    q.barrier = false;
    for (int i = 0; i < 3; ++i) {
      engine.query(q);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (auto& t : producers) t.join();
  querier.join();
  engine.flush();

  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.events_submitted, kProducers * kPerProducer);
  EXPECT_EQ(m.events_applied, kProducers * kPerProducer);
  EXPECT_EQ(m.inserts, kProducers * kPerProducer);
  EXPECT_EQ(m.deletes, 0);
  EXPECT_EQ(m.net_points, kProducers * kPerProducer);
  std::int64_t per_shard = 0;
  for (std::int64_t applied : m.shard_events_applied) per_shard += applied;
  EXPECT_EQ(per_shard, kProducers * kPerProducer);
  EXPECT_EQ(engine.net_count(), kProducers * kPerProducer);
}

// worker_threads = 0 degrades to inline draining (deterministic, no
// threads), matching the thread pool's inline mode.
TEST(Engine, InlineModeWorks) {
  const Stream stream = churn_workload(600, 200, 91);
  ClusteringEngine engine(kDim, test_params(),
                          engine_options(2, /*exact=*/true, /*workers=*/0));
  engine.submit(stream);
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.events_applied, static_cast<std::int64_t>(stream.size()));
  EngineQuery q;
  q.summary_only = true;
  EXPECT_TRUE(engine.query(q).ok);
}

TEST(Engine, MetricsJsonIsWellFormed) {
  ClusteringEngine engine(kDim, test_params(),
                          engine_options(2, /*exact=*/true, /*workers=*/0));
  Rng rng(7);
  const PointSet pts = gaussian_mixture(mixture(200), rng);
  engine.submit(insertion_stream(pts));
  EngineQuery q;
  q.summary_only = true;
  engine.query(q);

  const std::string json = metrics_json(engine.metrics());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"events_submitted\":", "\"events_applied\":", "\"queries\":",
        "\"ingest_events_per_second\":", "\"shard_queue_depth\":[",
        "\"last_query_millis\":", "\"total_query_millis\":",
        "\"query_latency_p50_ms\":", "\"query_latency_p99_ms\":",
        "\"query_latency_p999_ms\":", "\"query_latency_count\":",
        "\"submit_latency_p50_ms\":", "\"checkpoint_latency_count\":",
        "\"net_request_latency_count\":", "\"sketch_bytes\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }
  EXPECT_NE(json.find("\"events_submitted\":200"), std::string::npos) << json;
}

// Per-op latency histograms: counts mirror the op counters, the derived
// legacy keys come from the same buckets, and percentiles respect the
// recorded range — the race-prone scalar query timers are gone.
TEST(Engine, LatencyHistogramsTrackOperations) {
  ClusteringEngine engine(kDim, test_params(),
                          engine_options(2, /*exact=*/true, /*workers=*/0));
  Rng rng(13);
  const PointSet pts = gaussian_mixture(mixture(300), rng);
  engine.submit(insertion_stream(pts));  // one batch
  EngineQuery q;
  q.summary_only = true;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.query(q).ok);
  const std::string snap =
      std::string(::testing::TempDir()) + "engine_latency_hist_ckpt.bin";
  ASSERT_TRUE(engine.checkpoint(snap));

  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.submit_latency.count, m.batches);
  EXPECT_EQ(m.query_latency.count, m.queries);
  EXPECT_EQ(m.checkpoint_latency.count, m.checkpoints);
  EXPECT_EQ(m.query_latency.count, 3);

  // The histogram carries what the legacy scalars reported (last/sum).
  EXPECT_GT(m.query_latency.sum_micros, 0);
  EXPECT_GE(m.query_latency.last_micros, m.query_latency.min_micros);
  EXPECT_LE(m.query_latency.last_micros, m.query_latency.max_micros);
  EXPECT_GE(m.query_latency.sum_micros, m.query_latency.max_micros);

  // Percentiles are ordered and live inside the observed range.
  const double p50 = m.query_latency.p50_millis();
  const double p99 = m.query_latency.p99_millis();
  const double p999 = m.query_latency.p999_millis();
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  EXPECT_GE(p50, static_cast<double>(m.query_latency.min_micros) / 1e3);
  EXPECT_LE(p999, static_cast<double>(m.query_latency.max_micros) / 1e3);
}

// metrics() may race arbitrarily with live queries; every snapshot must be
// internally sane (this is the regression test for the old torn scalar
// last/total query timers — run under TSan in CI).
TEST(Engine, MetricsSnapshotsRaceCleanlyWithQueries) {
  ClusteringEngine engine(kDim, test_params(),
                          engine_options(2, /*exact=*/true, /*workers=*/2));
  Rng rng(17);
  const PointSet pts = gaussian_mixture(mixture(400), rng);
  engine.submit(insertion_stream(pts));

  std::thread querier([&engine] {
    EngineQuery q;
    q.summary_only = true;
    q.barrier = false;
    for (int i = 0; i < 8; ++i) engine.query(q);
  });
  for (int i = 0; i < 50; ++i) {
    const EngineMetrics m = engine.metrics();
    EXPECT_GE(m.query_latency.count, 0);
    EXPECT_LE(m.query_latency.count, 8);
    EXPECT_GE(m.query_latency.sum_micros, 0);
    const std::string json = metrics_json(m);
    EXPECT_NE(json.find("\"query_latency_count\":"), std::string::npos);
  }
  querier.join();
  EXPECT_EQ(engine.metrics().query_latency.count, 8);
}

}  // namespace
}  // namespace skc
