#include "skc/solve/cost.h"

#include <gtest/gtest.h>

#include "skc/geometry/metric.h"
#include "test_util.h"

namespace skc {
namespace {

TEST(Cost, CapacitatedAtLeastUncapacitated) {
  Rng rng(1);
  PointSet pts = testutil::random_points(2, 128, 20, rng);
  PointSet centers = testutil::random_points(2, 128, 4, rng);
  const double capped = capacitated_cost(pts, centers, 5.0, LrOrder{2.0});
  const double open =
      uncapacitated_cost(WeightedPointSet::unit(pts), centers, LrOrder{2.0});
  EXPECT_GE(capped, open - 1e-9);
}

TEST(Cost, HugeCapacityMatchesUncapacitated) {
  Rng rng(2);
  PointSet pts = testutil::random_points(3, 64, 15, rng);
  PointSet centers = testutil::random_points(3, 64, 3, rng);
  EXPECT_NEAR(capacitated_cost(pts, centers, 1e9, LrOrder{2.0}),
              uncapacitated_cost(WeightedPointSet::unit(pts), centers, LrOrder{2.0}),
              1e-6);
}

TEST(Cost, InfeasibleReturnsInfinity) {
  Rng rng(3);
  PointSet pts = testutil::random_points(2, 32, 10, rng);
  PointSet centers = testutil::random_points(2, 32, 2, rng);
  EXPECT_EQ(capacitated_cost(pts, centers, 3.0, LrOrder{2.0}), kInfCost);
}

TEST(TightCapacity, CeilOfNOverK) {
  EXPECT_DOUBLE_EQ(tight_capacity(10, 3), 4.0);
  EXPECT_DOUBLE_EQ(tight_capacity(9, 3), 3.0);
  EXPECT_DOUBLE_EQ(tight_capacity(1, 5), 1.0);
}

TEST(EvaluateAssignment, SumsCostsAndLoads) {
  PointSet pts(1);
  pts.push_back({0});
  pts.push_back({10});
  PointSet centers(1);
  centers.push_back({1});
  centers.push_back({8});
  WeightedPointSet w(1);
  w.push_back(pts[0], 2.0);
  w.push_back(pts[1], 3.0);
  const std::vector<CenterIndex> assignment = {0, 1};
  const AssignmentEval eval = evaluate_assignment(w, centers, LrOrder{2.0}, assignment);
  EXPECT_DOUBLE_EQ(eval.cost, 2.0 * 1.0 + 3.0 * 4.0);
  EXPECT_DOUBLE_EQ(eval.loads[0], 2.0);
  EXPECT_DOUBLE_EQ(eval.loads[1], 3.0);
  EXPECT_DOUBLE_EQ(eval.max_load, 3.0);
}

TEST(Cost, WeightedMatchesExpandedUnweighted) {
  // A point of weight 3 must behave exactly like 3 unit copies.
  PointSet centers(1);
  centers.push_back({0});
  centers.push_back({100});
  WeightedPointSet weighted(1);
  const std::vector<Coord> a = {10}, b = {90};
  weighted.push_back(a, 3.0);
  weighted.push_back(b, 1.0);
  PointSet expanded(1);
  expanded.push_back(a);
  expanded.push_back(a);
  expanded.push_back(a);
  expanded.push_back(b);
  for (double t : {2.0, 3.0, 4.0}) {
    EXPECT_NEAR(capacitated_cost(weighted, centers, t, LrOrder{2.0}),
                capacitated_cost(expanded, centers, t, LrOrder{2.0}), 1e-9)
        << "t=" << t;
  }
}

}  // namespace
}  // namespace skc
