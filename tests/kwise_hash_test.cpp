#include "skc/hash/kwise_hash.h"

#include <gtest/gtest.h>

#include <vector>

#include "skc/common/random.h"
#include "skc/common/types.h"

namespace skc {
namespace {

std::vector<Coord> point(std::initializer_list<Coord> c) { return {c}; }

TEST(VectorFold, DeterministicAndDiscriminating) {
  Rng rng(1);
  VectorFold fold(rng);
  const auto a = point({1, 2, 3});
  const auto b = point({1, 2, 4});
  EXPECT_EQ(fold(std::span<const Coord>(a)), fold(std::span<const Coord>(a)));
  EXPECT_NE(fold(std::span<const Coord>(a)), fold(std::span<const Coord>(b)));
}

TEST(VectorFold, OrderSensitive) {
  Rng rng(2);
  VectorFold fold(rng);
  const auto a = point({1, 2});
  const auto b = point({2, 1});
  EXPECT_NE(fold(std::span<const Coord>(a)), fold(std::span<const Coord>(b)));
}

TEST(KWiseHash, ValuesInField) {
  Rng rng(3);
  KWiseHash hash(8, rng);
  Rng points(4);
  for (int i = 0; i < 1000; ++i) {
    const auto p = point({static_cast<Coord>(points.uniform_int(1, 1 << 20)),
                          static_cast<Coord>(points.uniform_int(1, 1 << 20))});
    EXPECT_LT(hash(std::span<const Coord>(p)), f61::kP);
  }
}

TEST(KWiseHash, IndependenceAccessor) {
  Rng rng(5);
  KWiseHash hash(16, rng);
  EXPECT_EQ(hash.independence(), 16);
}

TEST(SamplingRate, RoundsToUnitFractions) {
  EXPECT_EQ(SamplingRate::from_probability(1.0).m, 1u);
  EXPECT_EQ(SamplingRate::from_probability(0.5).m, 2u);
  EXPECT_EQ(SamplingRate::from_probability(0.26).m, 4u);  // 1/0.26 ~ 3.85 -> 4
  EXPECT_EQ(SamplingRate::from_probability(0.001).m, 1000u);
  EXPECT_TRUE(SamplingRate::from_probability(1.0).always());
  EXPECT_FALSE(SamplingRate::from_probability(0.5).always());
}

TEST(SamplingRate, WeightIsInverseProbability) {
  const SamplingRate r = SamplingRate::from_probability(0.125);
  EXPECT_DOUBLE_EQ(r.weight(), 8.0);
  EXPECT_DOUBLE_EQ(r.probability(), 0.125);
}

TEST(KWiseSampler, EmpiricalRateMatches) {
  Rng rng(6);
  KWiseSampler sampler(8, SamplingRate{8}, rng);  // keep ~1/8
  Rng points(7);
  int kept = 0;
  const int trials = 80000;
  std::vector<Coord> p(3);
  for (int i = 0; i < trials; ++i) {
    for (auto& c : p) c = static_cast<Coord>(points.uniform_int(1, 1 << 16));
    kept += sampler.keep(p) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(kept) / trials, 0.125, 0.01);
}

TEST(KWiseSampler, DeterministicMembership) {
  Rng rng(8);
  KWiseSampler sampler(8, SamplingRate{4}, rng);
  const auto p = point({10, 20, 30});
  const bool first = sampler.keep(p);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.keep(p), first);
}

TEST(KWiseSampler, PairwiseCorrelationIsSmall) {
  // For a pairwise(+)-independent family, keep(a) and keep(b) should be
  // nearly uncorrelated for distinct fixed a, b over random draws of the
  // hash function.
  Rng seeds(9);
  const auto a = point({1, 1});
  const auto b = point({100, 100});
  int both = 0, a_only = 0, b_only = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    Rng rng(seeds.next());
    KWiseSampler sampler(4, SamplingRate{4}, rng);
    const bool ka = sampler.keep(a);
    const bool kb = sampler.keep(b);
    both += (ka && kb) ? 1 : 0;
    a_only += ka ? 1 : 0;
    b_only += kb ? 1 : 0;
  }
  const double pa = static_cast<double>(a_only) / trials;
  const double pb = static_cast<double>(b_only) / trials;
  const double pab = static_cast<double>(both) / trials;
  EXPECT_NEAR(pa, 0.25, 0.03);
  EXPECT_NEAR(pb, 0.25, 0.03);
  EXPECT_NEAR(pab, pa * pb, 0.02);
}

}  // namespace
}  // namespace skc
