// Prometheus text exposition (src/skc/obs/prometheus.h): structural
// invariants (cumulative buckets, +Inf == count) plus a byte-for-byte
// golden-file comparison on a fixed metrics snapshot — the renderer's
// output is a public scrape format, so any drift should be a conscious,
// reviewed change to tests/golden/metrics.prom.
#include "skc/obs/prometheus.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "skc/engine/metrics.h"
#include "skc/obs/histogram.h"

namespace skc::obs {
namespace {

/// A fully deterministic metrics snapshot: every counter distinct (so a
/// transposed field shows up in the golden diff) and latency histograms
/// recorded from fixed microsecond values.
EngineMetrics golden_metrics() {
  EngineMetrics m;
  m.events_submitted = 1200;
  m.events_applied = 1150;
  m.inserts = 1000;
  m.deletes = 150;
  m.batches = 12;
  m.queries = 3;
  m.checkpoints = 2;
  m.restores = 1;
  m.net_points = 850;
  m.uptime_seconds = 4.5;
  m.ingest_events_per_second = 255.5;
  m.last_checkpoint_bytes = 4096;
  m.sketch_bytes = 1 << 20;
  m.shard_queue_depth = {0, 3};
  m.shard_events_applied = {600, 550};
  m.net_connections_active = 2;
  m.net_connections_total = 5;
  m.net_bytes_in = 10000;
  m.net_bytes_out = 20000;
  m.net_busy_rejections = 1;
  m.net_malformed_frames = 0;
  // One entry per MsgType (kNumMsgTypes = 18): the serving opcodes plus the
  // cluster protocol (worker_hello, heartbeat, merge_sketch, fetch_coreset,
  // ship_snapshot), the tenant protocol (tenant_stats), and the
  // observability opcodes (cluster_trace_dump, worker_stats,
  // flight_recorder).
  m.net_requests_by_type = {4, 6, 1, 3, 2, 2, 1, 1, 1, 2, 8, 5, 0, 1, 7,
                            2, 9, 4};
  m.trace_dropped_spans = 11;

  LatencyHistogram submit, query, checkpoint, net;
  for (std::int64_t v : {200, 450, 450, 900}) submit.record_micros(v);
  for (std::int64_t v : {30'000, 75'000, 220'000}) query.record_micros(v);
  for (std::int64_t v : {1'500'000, 2'000'000}) checkpoint.record_micros(v);
  for (std::int64_t v : {50, 80, 120, 30'000, 12'000'000}) {
    net.record_micros(v);
  }
  m.submit_latency = submit.snapshot();
  m.query_latency = query.snapshot();
  m.checkpoint_latency = checkpoint.snapshot();
  m.net_request_latency = net.snapshot();
  return m;
}

TEST(Prometheus, MatchesGoldenFile) {
  const std::string path = std::string(SKC_GOLDEN_DIR) + "/metrics.prom";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  const std::string rendered = prometheus_text(golden_metrics());
  EXPECT_EQ(rendered, golden.str())
      << "exposition drifted from " << path
      << " — if intentional, regenerate the golden from the new output";
}

TEST(Prometheus, HistogramBucketsAreCumulativeUpToCount) {
  const std::string text = prometheus_text(golden_metrics());
  // For each op: bucket counts never decrease with le, and +Inf equals the
  // series _count (the Prometheus histogram contract scrapers assume).
  for (const char* op : {"submit_batch", "query", "checkpoint", "net_request"}) {
    std::istringstream lines(text);
    std::string line;
    std::int64_t prev = 0, inf = -1, count = -1;
    const std::string bucket_prefix =
        std::string("skc_op_latency_seconds_bucket{op=\"") + op + "\",le=\"";
    const std::string count_prefix =
        std::string("skc_op_latency_seconds_count{op=\"") + op + "\"} ";
    int rungs = 0;
    while (std::getline(lines, line)) {
      if (line.rfind(bucket_prefix, 0) == 0) {
        const std::size_t close = line.find("\"} ");
        ASSERT_NE(close, std::string::npos) << line;
        const std::int64_t v = std::stoll(line.substr(close + 3));
        EXPECT_GE(v, prev) << op << ": non-monotone bucket: " << line;
        prev = v;
        ++rungs;
        if (line.find("le=\"+Inf\"") != std::string::npos) inf = v;
      } else if (line.rfind(count_prefix, 0) == 0) {
        count = std::stoll(line.substr(count_prefix.size()));
      }
    }
    EXPECT_EQ(rungs, 17) << op;  // 16 ladder rungs + the +Inf bucket
    ASSERT_GE(inf, 0) << op;
    EXPECT_EQ(inf, count) << op << ": +Inf bucket must equal _count";
  }
}

TEST(Prometheus, EveryLineIsCommentOrSample) {
  const std::string text = prometheus_text(golden_metrics());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // A sample: metric[{labels}] value — name starts with the skc_ prefix
    // and the line splits into exactly two fields at the last space.
    EXPECT_EQ(line.rfind("skc_", 0), 0u) << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

TEST(Prometheus, EmptyHistogramsRenderAllZero) {
  EngineMetrics m;  // default: empty histograms, no shards
  const std::string text = prometheus_text(m);
  EXPECT_NE(
      text.find("skc_op_latency_seconds_bucket{op=\"query\",le=\"+Inf\"} 0"),
      std::string::npos);
  EXPECT_NE(text.find("skc_op_latency_seconds_count{op=\"query\"} 0"),
            std::string::npos);
}

}  // namespace
}  // namespace skc::obs
