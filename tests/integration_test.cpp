// End-to-end property tests: the strong-coreset guarantee itself
// (Theorem 3.19 / 4.5 in miniature), measured against exact capacitated
// costs on the full data.
#include <gtest/gtest.h>

#include "skc/skc.h"
#include "test_util.h"

namespace skc {
namespace {

struct QualityCase {
  double r;
  int k;
  double skew;
};

class CoresetQualityTest : public ::testing::TestWithParam<QualityCase> {};

TEST_P(CoresetQualityTest, CapacitatedCostPreservedAcrossCenters) {
  const QualityCase qcase = GetParam();
  const int k = qcase.k;
  const LrOrder r{qcase.r};
  Rng rng(static_cast<std::uint64_t>(
      1000 + k * 17 + static_cast<int>(qcase.r * 3 + qcase.skew * 7)));

  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 9;
  cfg.clusters = k;
  cfg.n = 1200;
  cfg.spread = 0.02;
  cfg.skew = qcase.skew;
  const PointSet pts = gaussian_mixture(cfg, rng);

  CoresetParams params = CoresetParams::practical(k, r, 0.3, 0.3);
  params.samples_per_part = 48.0;  // a bit more budget for the tight check
  const OfflineBuildResult built = build_offline_coreset(pts, params, 9);
  ASSERT_TRUE(built.ok);
  const Coreset& coreset = built.coreset;

  const double n = static_cast<double>(pts.size());
  const double w = coreset.total_weight();

  // Probe several center sets: k-means++ seeds (good centers) and uniform
  // random (bad centers); capacities from tight to loose.
  for (int probe = 0; probe < 4; ++probe) {
    Rng probe_rng(static_cast<std::uint64_t>(2000 + probe));
    PointSet centers =
        probe < 2 ? kmeanspp_seed(WeightedPointSet::unit(pts), k, r, probe_rng)
                  : testutil::random_points(2, 512, k, probe_rng);
    for (double slack : {1.05, 1.5}) {
      // The strong-coreset property is two-sided across RELAXED capacities
      // (Section 1.1):
      //   cost_{(1+eta)^2 t}(Q) / (1+eps)
      //     <= cost_{(1+eta) t}(Q', w') <= (1+eps) cost_t(Q).
      const double eta = 1.0 + params.eta;
      const double t = tight_capacity(n, k) * slack;
      const double full_at_t = capacitated_cost(pts, centers, t, r);
      const double full_relaxed = capacitated_cost(pts, centers, t * eta * eta, r);
      const double coreset_cost =
          capacitated_cost(coreset.points, centers, (t * w / n) * eta, r);
      ASSERT_LT(full_at_t, kInfCost);
      ASSERT_LT(coreset_cost, kInfCost)
          << "coreset infeasible at relaxed capacity (probe " << probe << ")";
      // Empirical epsilon envelope (generous vs the configured 0.3, but far
      // tighter than anything a broken construction would satisfy).
      EXPECT_LT(coreset_cost, 1.6 * full_at_t)
          << "probe " << probe << " slack " << slack;
      EXPECT_GT(coreset_cost, full_relaxed / 1.6)
          << "probe " << probe << " slack " << slack;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoresetQualityTest,
    ::testing::Values(QualityCase{2.0, 3, 1.0}, QualityCase{2.0, 4, 0.0},
                      QualityCase{1.0, 3, 1.0}, QualityCase{1.0, 4, 1.5},
                      QualityCase{3.0, 3, 1.0}),
    [](const ::testing::TestParamInfo<QualityCase>& param_info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "r%dk%dskew%d",
                    static_cast<int>(param_info.param.r * 10), param_info.param.k,
                    static_cast<int>(param_info.param.skew * 10));
      return std::string(buf);
    });

TEST(Integration, StreamingCoresetSolvesCapacitatedKMeans) {
  // Full pipeline: dynamic stream -> coreset -> capacitated k-means ->
  // full-data assignment; compare against solving on the full data.
  Rng rng(1);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 9;
  cfg.clusters = 3;
  cfg.n = 900;
  cfg.spread = 0.02;
  cfg.skew = 1.3;
  const PointSet base = gaussian_mixture(cfg, rng);
  const PointSet extra = gaussian_mixture(cfg, rng);
  Rng srng(2);
  const Stream stream = churn_stream(base, extra, ChurnConfig{}, srng);

  const CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  StreamingOptions opt;
  opt.log_delta = 9;
  opt.max_points = base.size() + extra.size();
  opt.counting_samples = 1e18;
  opt.exact_storing = true;
  const StreamingResult streamed = build_streaming_coreset(stream, 2, params, opt);
  ASSERT_TRUE(streamed.ok);

  const double n = static_cast<double>(base.size());
  const double t = tight_capacity(n, 3) * 1.1;
  Rng solver_rng(3);
  CapacitatedSolverOptions sopts;
  sopts.restarts = 2;
  const double tc = t * streamed.coreset.total_weight() / n;
  const CapacitatedSolution on_coreset = capacitated_kmeans(
      streamed.coreset.points, 3, tc, LrOrder{2.0}, sopts, solver_rng);
  ASSERT_TRUE(on_coreset.feasible);

  Rng solver_rng2(3);
  const CapacitatedSolution on_full = capacitated_kmeans(
      WeightedPointSet::unit(base), 3, t, LrOrder{2.0}, sopts, solver_rng2);
  ASSERT_TRUE(on_full.feasible);

  // Evaluate the coreset-derived centers on the FULL data (the end-to-end
  // metric of Fact 2.3), with the (1 + eta) capacity relaxation.
  const double full_eval = capacitated_cost(base, on_coreset.centers,
                                            t * (1.0 + params.eta), LrOrder{2.0});
  ASSERT_LT(full_eval, kInfCost);
  EXPECT_LT(full_eval, 2.0 * on_full.cost + 1e-9)
      << "coreset centers are far worse than full-data centers";
}

TEST(Integration, CoresetSpeedsUpWithoutDestroyingCost) {
  // The reason coresets exist: solving on the coreset must be much faster
  // at comparable cost.  (Timing asserted loosely: coreset is >= 3x faster.)
  Rng rng(4);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 4;
  cfg.n = 2500;
  cfg.skew = 1.0;
  const PointSet pts = gaussian_mixture(cfg, rng);
  const CoresetParams params = CoresetParams::practical(4, LrOrder{2.0}, 0.3, 0.3);
  const OfflineBuildResult built = build_offline_coreset(pts, params, 10);
  ASSERT_TRUE(built.ok);
  ASSERT_LT(built.coreset.points.size(), pts.size() / 2);

  const double t = tight_capacity(static_cast<double>(pts.size()), 4) * 1.2;
  CapacitatedSolverOptions opts;
  opts.max_iters = 6;

  Timer coreset_timer;
  Rng r1(5);
  const double tc = t * built.coreset.total_weight() / static_cast<double>(pts.size());
  const CapacitatedSolution fast =
      capacitated_kmeans(built.coreset.points, 4, tc, LrOrder{2.0}, opts, r1);
  const double coreset_time = coreset_timer.seconds();
  ASSERT_TRUE(fast.feasible);

  Timer full_timer;
  Rng r2(5);
  const CapacitatedSolution slow = capacitated_kmeans(
      WeightedPointSet::unit(pts), 4, t, LrOrder{2.0}, opts, r2);
  const double full_time = full_timer.seconds();
  ASSERT_TRUE(slow.feasible);

  EXPECT_LT(coreset_time, full_time / 3.0);
  const double eval_fast = capacitated_cost(pts, fast.centers,
                                            t * (1.0 + params.eta), LrOrder{2.0});
  EXPECT_LT(eval_fast, 2.0 * slow.cost);
}

}  // namespace
}  // namespace skc
