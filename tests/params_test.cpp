#include "skc/coreset/params.h"

#include <gtest/gtest.h>

#include <cmath>

#include "skc/common/random.h"

namespace skc {
namespace {

TEST(CoresetParams, PracticalGammaSaturates) {
  const CoresetParams p = CoresetParams::practical(8, LrOrder{2.0}, 0.2, 0.2);
  EXPECT_DOUBLE_EQ(p.gamma(4, 14), 0.05);
}

TEST(CoresetParams, GammaShrinksWithTighterEps) {
  CoresetParams p = CoresetParams::theory(4, 2, 10, LrOrder{2.0}, 0.3, 0.3);
  CoresetParams tighter = CoresetParams::theory(4, 2, 10, LrOrder{2.0}, 0.03, 0.3);
  EXPECT_LT(tighter.gamma(2, 10), p.gamma(2, 10));
}

TEST(CoresetParams, TheorySamplingDegeneratesToOne) {
  // The paper's constants make phi_i = 1 at any realistic threshold: the
  // coreset keeps every point of every included part.
  const CoresetParams p = CoresetParams::theory(8, 4, 14, LrOrder{2.0}, 0.2, 0.2);
  Rng rng(1);
  HierarchicalGrid grid(4, 14, rng);
  for (int level = 0; level <= 14; ++level) {
    EXPECT_DOUBLE_EQ(p.sampling_probability(grid, level, 1e12), 1.0);
  }
}

TEST(CoresetParams, PracticalSamplingDropsAtFineLevels) {
  const CoresetParams p = CoresetParams::practical(8, LrOrder{2.0}, 0.2, 0.2);
  Rng rng(2);
  HierarchicalGrid grid(4, 14, rng);
  const double o = 1e10;
  // T_i grows with the level, so phi_i decreases.
  double prev = 2.0;
  for (int level = 0; level <= 14; ++level) {
    const double phi = p.sampling_probability(grid, level, o);
    EXPECT_LE(phi, prev + 1e-12);
    prev = phi;
  }
  EXPECT_LT(p.sampling_probability(grid, 14, o), 1.0);
}

TEST(CoresetParams, MassBoundGrowsWithKAndDim) {
  const CoresetParams p = CoresetParams::practical(8, LrOrder{2.0}, 0.2, 0.2);
  EXPECT_LT(p.mass_bound(2, 10), p.mass_bound(8, 10));
  const CoresetParams bigger = CoresetParams::practical(32, LrOrder{2.0}, 0.2, 0.2);
  EXPECT_LT(p.mass_bound(2, 10), bigger.mass_bound(2, 10));
}

TEST(CoresetParams, PartitionViewIsConsistent) {
  const CoresetParams p = CoresetParams::practical(5, LrOrder{1.0}, 0.1, 0.1);
  const PartitionParams pp = p.partition();
  EXPECT_EQ(pp.k, 5);
  EXPECT_EQ(pp.r.r, 1.0);
  EXPECT_DOUBLE_EQ(pp.threshold_const, p.threshold_const);
  EXPECT_DOUBLE_EQ(pp.heavy_bound_const, p.heavy_bound_const);
}

TEST(CoresetParams, TheoryConstantsMatchPaper) {
  const CoresetParams p = CoresetParams::theory(4, 2, 8, LrOrder{2.0}, 0.2, 0.2);
  EXPECT_DOUBLE_EQ(p.threshold_const, 0.01);
  EXPECT_DOUBLE_EQ(p.heavy_bound_const, 20000.0);
  EXPECT_DOUBLE_EQ(p.mass_bound_const, 10000.0);
  EXPECT_DOUBLE_EQ(p.gamma_const, std::pow(2.0, -24.0));  // 2^{-2(r+10)}, r=2
}

}  // namespace
}  // namespace skc
