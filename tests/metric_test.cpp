#include "skc/geometry/metric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace skc {
namespace {

TEST(Metric, DistSqExact) {
  PointSet s(3);
  s.push_back({0, 0, 0});
  s.push_back({1, 2, 2});
  EXPECT_EQ(dist_sq(s[0], s[1]), 9);
  EXPECT_DOUBLE_EQ(dist(s[0], s[1]), 3.0);
}

TEST(Metric, DistIsSymmetricAndZeroOnEqual) {
  Rng rng(1);
  PointSet s = testutil::random_points(4, 1000, 50, rng);
  for (PointIndex i = 0; i < s.size(); ++i) {
    EXPECT_EQ(dist_sq(s[i], s[i]), 0);
    for (PointIndex j = i + 1; j < s.size(); ++j) {
      EXPECT_EQ(dist_sq(s[i], s[j]), dist_sq(s[j], s[i]));
    }
  }
}

TEST(Metric, TriangleInequality) {
  Rng rng(2);
  PointSet s = testutil::random_points(3, 100, 30, rng);
  for (PointIndex a = 0; a < 10; ++a) {
    for (PointIndex b = 10; b < 20; ++b) {
      for (PointIndex c = 20; c < 30; ++c) {
        EXPECT_LE(dist(s[a], s[c]), dist(s[a], s[b]) + dist(s[b], s[c]) + 1e-9);
      }
    }
  }
}

class DistPowTest : public ::testing::TestWithParam<double> {};

TEST_P(DistPowTest, MatchesPowOfDistance) {
  const LrOrder r{GetParam()};
  Rng rng(3);
  PointSet s = testutil::random_points(5, 500, 40, rng);
  for (PointIndex i = 0; i + 1 < s.size(); i += 2) {
    const double d = dist(s[i], s[i + 1]);
    EXPECT_NEAR(dist_pow(s[i], s[i + 1], r), std::pow(d, r.r),
                1e-9 * std::max(1.0, std::pow(d, r.r)));
  }
}

TEST_P(DistPowTest, RelaxedTriangleFact21) {
  // Fact 2.1: dist^r(x,z) <= 2^{r-1} (dist^r(x,y) + dist^r(y,z)).
  const LrOrder r{GetParam()};
  Rng rng(4);
  PointSet s = testutil::random_points(3, 200, 30, rng);
  const double factor = std::pow(2.0, r.r - 1.0);
  for (PointIndex a = 0; a < 10; ++a) {
    for (PointIndex b = 10; b < 20; ++b) {
      for (PointIndex c = 20; c < 30; ++c) {
        EXPECT_LE(dist_pow(s[a], s[c], r),
                  factor * (dist_pow(s[a], s[b], r) + dist_pow(s[b], s[c], r)) + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, DistPowTest, ::testing::Values(1.0, 2.0, 3.0, 1.5));

TEST(Metric, NearestCenterPicksClosest) {
  PointSet centers(2);
  centers.push_back({0, 0});
  centers.push_back({10, 0});
  centers.push_back({0, 10});
  PointSet p(2);
  p.push_back({9, 1});
  const NearestCenter nc = nearest_center(p[0], centers, LrOrder{2.0});
  EXPECT_EQ(nc.index, 1);
  EXPECT_DOUBLE_EQ(nc.cost, 2.0);  // (1^2 + 1^2)
}

TEST(Metric, NearestCenterTiesToLowestIndex) {
  PointSet centers(1);
  centers.push_back({0});
  centers.push_back({2});
  PointSet p(1);
  p.push_back({1});
  EXPECT_EQ(nearest_center(p[0], centers, LrOrder{2.0}).index, 0);
}

TEST(Metric, UnconstrainedCostMatchesManualSum) {
  Rng rng(5);
  PointSet points = testutil::random_points(3, 64, 200, rng);
  PointSet centers = testutil::random_points(3, 64, 4, rng);
  const LrOrder r{2.0};
  double manual = 0.0;
  for (PointIndex i = 0; i < points.size(); ++i) {
    manual += nearest_center(points[i], centers, r).cost;
  }
  EXPECT_NEAR(unconstrained_cost(points, centers, r), manual, 1e-6 * manual);
}

TEST(Metric, DiameterOfColinearPoints) {
  PointSet s(1);
  s.push_back({1});
  s.push_back({5});
  s.push_back({3});
  EXPECT_DOUBLE_EQ(diameter(s), 4.0);
}

TEST(Metric, PowRHelpers) {
  EXPECT_DOUBLE_EQ(pow_r(3.0, LrOrder{2.0}), 9.0);
  EXPECT_DOUBLE_EQ(pow_r(3.0, LrOrder{1.0}), 3.0);
  EXPECT_NEAR(pow_r(2.0, LrOrder{3.0}), 8.0, 1e-12);
}

}  // namespace
}  // namespace skc
