#include "skc/sketch/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "skc/common/random.h"

namespace skc {
namespace {

using Item = std::vector<std::int64_t>;

std::map<Item, std::int64_t> decode_map(const SparseRecovery& sketch) {
  auto decoded = sketch.decode();
  EXPECT_TRUE(decoded.has_value());
  std::map<Item, std::int64_t> out;
  if (decoded) {
    for (const RecoveredItem& it : *decoded) out[it.item] += it.count;
  }
  return out;
}

TEST(SparseRecovery, EmptyDecodesEmpty) {
  SparseRecovery s({2, 8, 3, 1.5, 8}, 1);
  EXPECT_TRUE(s.drained());
  auto d = s.decode();
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->empty());
}

TEST(SparseRecovery, SingleItemRoundTrip) {
  SparseRecovery s({3, 8, 3, 1.5, 8}, 2);
  const Item item = {5, -7, 123456};
  s.update(item, 3);
  auto m = decode_map(s);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[item], 3);
}

TEST(SparseRecovery, InsertDeleteCancels) {
  SparseRecovery s({2, 8, 3, 1.5, 8}, 3);
  const Item a = {1, 2};
  const Item b = {3, 4};
  s.update(a, 5);
  s.update(b, 2);
  s.update(a, -5);
  EXPECT_FALSE(s.drained());
  auto m = decode_map(s);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[b], 2);
  s.update(b, -2);
  EXPECT_TRUE(s.drained());
}

TEST(SparseRecovery, ManyItemsWithinCapacity) {
  Rng rng(4);
  SparseRecovery s({4, 64, 3, 1.5, 8}, 5);
  std::map<Item, std::int64_t> truth;
  for (int i = 0; i < 50; ++i) {
    Item item(4);
    for (auto& v : item) v = rng.uniform_int(-1000, 1000);
    const std::int64_t count = rng.uniform_int(1, 9);
    s.update(item, count);
    truth[item] += count;
  }
  EXPECT_EQ(decode_map(s), truth);
}

TEST(SparseRecovery, OverCapacityFailsDecode) {
  Rng rng(6);
  SparseRecovery s({2, 8, 3, 1.5, 8}, 7);
  for (int i = 0; i < 500; ++i) {
    Item item = {rng.uniform_int(0, 1 << 20), rng.uniform_int(0, 1 << 20)};
    s.update(item, 1);
  }
  EXPECT_FALSE(s.decode().has_value());
}

TEST(SparseRecovery, RecoversAfterMassDeletion) {
  // Saturate far past capacity, then delete back down to a sparse state:
  // the linear sketch must recover (the property real dynamic streams need).
  Rng rng(8);
  SparseRecovery s({2, 8, 3, 1.5, 8}, 9);
  std::vector<Item> items;
  for (int i = 0; i < 300; ++i) {
    items.push_back({rng.uniform_int(0, 1 << 30), rng.uniform_int(0, 1 << 30)});
    s.update(items.back(), 1);
  }
  for (int i = 10; i < 300; ++i) s.update(items[static_cast<std::size_t>(i)], -1);
  std::map<Item, std::int64_t> truth;
  for (int i = 0; i < 10; ++i) truth[items[static_cast<std::size_t>(i)]] += 1;
  EXPECT_EQ(decode_map(s), truth);
}

TEST(SparseRecovery, MergeEqualsUnion) {
  const SparseRecovery::Config cfg{3, 32, 3, 1.5, 8};
  SparseRecovery a(cfg, 42), b(cfg, 42);
  Rng rng(10);
  std::map<Item, std::int64_t> truth;
  for (int i = 0; i < 12; ++i) {
    Item item = {rng.uniform_int(0, 99), rng.uniform_int(0, 99), rng.uniform_int(0, 99)};
    a.update(item, 2);
    truth[item] += 2;
  }
  for (int i = 0; i < 12; ++i) {
    Item item = {rng.uniform_int(0, 99), rng.uniform_int(0, 99), rng.uniform_int(0, 99)};
    b.update(item, 1);
    truth[item] += 1;
  }
  a.merge(b);
  EXPECT_EQ(decode_map(a), truth);
}

TEST(SparseRecovery, MergeRequiresSameSeed) {
  const SparseRecovery::Config cfg{2, 8, 3, 1.5, 8};
  SparseRecovery a(cfg, 1), b(cfg, 2);
  EXPECT_DEATH(a.merge(b), "");
}

TEST(SparseRecovery, CoordSpanOverload) {
  SparseRecovery s({2, 8, 3, 1.5, 8}, 11);
  const std::vector<Coord> p = {7, -9};
  s.update(std::span<const Coord>(p), 4);
  const Item as64 = {7, -9};
  auto m = decode_map(s);
  EXPECT_EQ(m[as64], 4);
}

TEST(SparseRecovery, MemoryIsCapacityBound) {
  SparseRecovery small({4, 8, 3, 1.5, 8}, 1);
  SparseRecovery big({4, 512, 3, 1.5, 8}, 1);
  EXPECT_LT(small.memory_bytes(), big.memory_bytes());
  EXPECT_LT(big.memory_bytes(), 4u << 20);  // sane absolute bound
}

TEST(SparseRecovery, MidpointCancellationRegression) {
  // Regression for a linear-fingerprint bug: a bucket holding items i and j
  // with even coordinate sums must NOT verify against their midpoint
  // ((i+j)/2 repeated twice).  With small integer items and many seeds this
  // is overwhelmingly likely to trip a linear fingerprint.
  Rng seeds(777);
  for (int trial = 0; trial < 200; ++trial) {
    SparseRecovery s({2, 4, 1, 1.0, 8}, seeds.next());  // 1 rep, few buckets
    Rng rng(static_cast<std::uint64_t>(trial));
    std::map<Item, std::int64_t> truth;
    for (int i = 0; i < 6; ++i) {
      Item item = {2 * rng.uniform_int(-5, 5), 2 * rng.uniform_int(-5, 5)};
      s.update(item, 1);
      truth[item] += 1;
    }
    auto decoded = s.decode();
    if (!decoded) continue;  // stalling is allowed; WRONG output is not
    std::map<Item, std::int64_t> got;
    for (const RecoveredItem& it : *decoded) got[it.item] += it.count;
    EXPECT_EQ(got, truth) << "trial " << trial;
  }
}

class RecoveryPropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RecoveryPropertyTest, RandomMultisetRoundTrip) {
  const auto [item_len, distinct] = GetParam();
  Rng rng(static_cast<std::uint64_t>(100 + item_len * 31 + distinct));
  SparseRecovery s({item_len, 2 * distinct, 3, 1.5, 8}, rng.next());
  std::map<Item, std::int64_t> truth;
  // Build a random multiset with churn: random +/- updates on a pool.
  std::vector<Item> pool;
  for (int i = 0; i < distinct; ++i) {
    Item item(static_cast<std::size_t>(item_len));
    for (auto& v : item) v = rng.uniform_int(-5000, 5000);
    pool.push_back(item);
  }
  for (int step = 0; step < distinct * 20; ++step) {
    const Item& item = pool[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(pool.size())))];
    std::int64_t delta = rng.bernoulli(0.6) ? 1 : -1;
    if (truth[item] + delta < 0) delta = 1;  // keep the multiset nonnegative
    s.update(item, delta);
    truth[item] += delta;
  }
  std::erase_if(truth, [](const auto& kv) { return kv.second == 0; });
  EXPECT_EQ(decode_map(s), truth);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecoveryPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8), ::testing::Values(1, 4, 16, 64)));

}  // namespace
}  // namespace skc
