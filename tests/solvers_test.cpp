#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "skc/geometry/metric.h"
#include "skc/solve/brute_force.h"
#include "skc/solve/capacitated_kmeans.h"
#include "skc/solve/capacitated_kmedian.h"
#include "skc/solve/cost.h"
#include "skc/solve/kmeanspp.h"
#include "skc/solve/lloyd.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

TEST(KMeansPP, ReturnsKDistinctRowsFromData) {
  Rng rng(1);
  PointSet pts = testutil::random_points(2, 1024, 100, rng);
  Rng seed_rng(2);
  const PointSet centers = kmeanspp_seed(WeightedPointSet::unit(pts), 5, LrOrder{2.0},
                                         seed_rng);
  ASSERT_EQ(centers.size(), 5);
  // Each center is an input point.
  auto input = testutil::canonical_multiset(pts);
  for (PointIndex i = 0; i < centers.size(); ++i) {
    const auto p = centers[i];
    EXPECT_TRUE(std::binary_search(input.begin(), input.end(),
                                   std::vector<Coord>(p.begin(), p.end())));
  }
}

TEST(KMeansPP, SpreadsSeedsAcrossSeparatedClusters) {
  Rng rng(3);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 12;
  cfg.clusters = 4;
  cfg.n = 800;
  cfg.spread = 0.005;  // very tight clusters
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  Rng seed_rng(4);
  const PointSet seeds =
      kmeanspp_seed(WeightedPointSet::unit(planted.points), 4, LrOrder{2.0}, seed_rng);
  // Each seed should be near a distinct planted center.
  std::set<int> hit;
  for (PointIndex i = 0; i < seeds.size(); ++i) {
    hit.insert(nearest_center(seeds[i], planted.centers, LrOrder{2.0}).index);
  }
  EXPECT_EQ(hit.size(), 4u);
}

TEST(Lloyd, CostNeverIncreases) {
  Rng rng(5);
  PointSet pts = testutil::random_points(2, 256, 300, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  Rng seed_rng(6);
  const PointSet init = kmeanspp_seed(w, 4, LrOrder{2.0}, seed_rng);
  const double init_cost = uncapacitated_cost(w, init, LrOrder{2.0});
  const ClusteringResult result = lloyd(w, init, LrOrder{2.0}, LloydOptions{});
  EXPECT_LE(result.cost, init_cost + 1e-9);
  EXPECT_GE(result.iterations, 1);
}

TEST(Lloyd, RecoversWellSeparatedMixture) {
  Rng rng(7);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 12;
  cfg.clusters = 3;
  cfg.n = 600;
  cfg.spread = 0.004;
  const PlantedMixture planted = planted_gaussian_mixture(cfg, rng);
  Rng solver_rng(8);
  const ClusteringResult result = kmeans(WeightedPointSet::unit(planted.points), 3,
                                         LrOrder{2.0}, LloydOptions{}, solver_rng);
  // Every recovered center lies close to some planted center.
  const double delta = 4096.0;
  for (PointIndex i = 0; i < result.centers.size(); ++i) {
    const double d =
        std::sqrt(nearest_center(result.centers[i], planted.centers, LrOrder{2.0}).cost);
    EXPECT_LT(d, 0.05 * delta);
  }
}

TEST(CapacitatedKMeans, RespectsCapacity) {
  Rng rng(9);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 3;
  cfg.n = 120;
  cfg.skew = 1.5;  // skewed sizes: capacity must bind
  PointSet pts = gaussian_mixture(cfg, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  const double t = tight_capacity(static_cast<double>(pts.size()), 3);
  Rng solver_rng(10);
  const CapacitatedSolution sol =
      capacitated_kmeans(w, 3, t, LrOrder{2.0}, CapacitatedSolverOptions{}, solver_rng);
  ASSERT_TRUE(sol.feasible);
  for (double load : sol.loads) EXPECT_LE(load, t + 1e-9);
  EXPECT_LT(sol.cost, kInfCost);
}

TEST(CapacitatedKMeans, CapacityBindingCostsMore) {
  Rng rng(11);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 3;
  cfg.n = 90;
  cfg.skew = 2.0;
  PointSet pts = gaussian_mixture(cfg, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  Rng rng_a(12), rng_b(12);
  CapacitatedSolverOptions opts;
  opts.restarts = 3;
  const auto tight = capacitated_kmeans(w, 3, tight_capacity(90, 3), LrOrder{2.0},
                                        opts, rng_a);
  const auto loose = capacitated_kmeans(w, 3, 90.0, LrOrder{2.0}, opts, rng_b);
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_GE(tight.cost, loose.cost - 1e-9);
}

TEST(CapacitatedKMeans, NearOptimalOnTinyInstance) {
  Rng rng(13);
  PointSet pts = testutil::random_points(2, 16, 9, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  const double t = 3.0;
  CapacitatedSolverOptions opts;
  opts.restarts = 5;
  Rng solver_rng(14);
  const auto sol = capacitated_kmeans(w, 3, t, LrOrder{2.0}, opts, solver_rng);
  ASSERT_TRUE(sol.feasible);
  // Exhaustive optimum over centers restricted to data points.
  const auto brute = brute_force_best_centers(w, pts, 3, t, LrOrder{2.0});
  // Lloyd centers are unrestricted, so it can even beat the discrete brute
  // force; just require it is not far worse.
  EXPECT_LE(sol.cost, 2.0 * brute.cost + 1e-9);
}

TEST(CapacitatedKMedian, RespectsCapacityAndImproves) {
  Rng rng(15);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 3;
  cfg.n = 80;
  cfg.skew = 1.0;
  PointSet pts = gaussian_mixture(cfg, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  const double t = tight_capacity(80, 3);
  Rng solver_rng(16);
  const auto sol = capacitated_kmedian(w, 3, t, LrOrder{1.0}, LocalSearchOptions{},
                                       solver_rng);
  ASSERT_TRUE(sol.feasible);
  for (double load : sol.loads) EXPECT_LE(load, t + 1e-9);
  // Local search should at least match a random single seed's cost.
  Rng base_rng(17);
  const PointSet seeds = kmeanspp_seed(w, 3, LrOrder{1.0}, base_rng);
  const double seed_cost = capacitated_cost(w, seeds, t, LrOrder{1.0});
  EXPECT_LE(sol.cost, seed_cost + 1e-9);
}


TEST(Lloyd, MedoidUpdateForKMedianStaysOnDataPoints) {
  // r = 1 uses the medoid update: every center must remain an input point.
  Rng rng(21);
  PointSet pts = testutil::random_points(2, 256, 120, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  Rng seed_rng(22);
  const ClusteringResult result =
      kmeans(w, 3, LrOrder{1.0}, LloydOptions{}, seed_rng);
  auto input = testutil::canonical_multiset(pts);
  for (PointIndex i = 0; i < result.centers.size(); ++i) {
    const auto c = result.centers[i];
    EXPECT_TRUE(std::binary_search(input.begin(), input.end(),
                                   std::vector<Coord>(c.begin(), c.end())));
  }
}

class CapacitatedSolverSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CapacitatedSolverSweep, FeasibleAtTightCapacityAcrossShapes) {
  const auto [k, r] = GetParam();
  Rng rng(static_cast<std::uint64_t>(100 + k * 13 + static_cast<int>(r * 7)));
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = k;
  cfg.n = 40 * k;
  cfg.skew = 1.4;
  const PointSet pts = gaussian_mixture(cfg, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  const double t = tight_capacity(static_cast<double>(pts.size()), k);
  Rng solver_rng(static_cast<std::uint64_t>(200 + k));
  const CapacitatedSolution sol =
      capacitated_kmeans(w, k, t, LrOrder{r}, CapacitatedSolverOptions{}, solver_rng);
  ASSERT_TRUE(sol.feasible) << "k=" << k << " r=" << r;
  for (double load : sol.loads) EXPECT_LE(load, t + 1e-9);
  // The reported cost matches re-evaluating the assignment.
  const AssignmentEval eval = evaluate_assignment(w, sol.centers, LrOrder{r},
                                                  sol.assignment);
  EXPECT_NEAR(eval.cost, sol.cost, 1e-6 * std::max(1.0, sol.cost));
}

INSTANTIATE_TEST_SUITE_P(Shapes, CapacitatedSolverSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(1.0, 2.0)));

TEST(BruteForce, MatchesHandComputedTinyCase) {
  // 4 points on a line, 2 centers, capacity 2.
  PointSet pts(1);
  pts.push_back({1});
  pts.push_back({2});
  pts.push_back({9});
  pts.push_back({10});
  PointSet centers(1);
  centers.push_back({1});
  centers.push_back({10});
  const double cost =
      brute_force_capacitated_cost(WeightedPointSet::unit(pts), centers, 2.0,
                                   LrOrder{2.0});
  EXPECT_DOUBLE_EQ(cost, 0.0 + 1.0 + 1.0 + 0.0);
}

TEST(BruteForce, InfeasibleIsInfinite) {
  PointSet pts(1);
  pts.push_back({1});
  pts.push_back({2});
  pts.push_back({3});
  PointSet centers(1);
  centers.push_back({1});
  EXPECT_EQ(brute_force_capacitated_cost(WeightedPointSet::unit(pts), centers, 2.0,
                                         LrOrder{2.0}),
            kInfCost);
}

TEST(BruteForceBestCenters, FindsPlantedOptimum) {
  PointSet pts(1);
  for (Coord x : {1, 2, 3, 50, 51, 52}) pts.push_back({x});
  const auto best = brute_force_best_centers(WeightedPointSet::unit(pts), pts, 2, 3.0,
                                             LrOrder{2.0});
  // Optimal centers are the middles: 2 and 51.
  ASSERT_EQ(best.centers.size(), 2);
  std::set<Coord> got = {best.centers[0][0], best.centers[1][0]};
  EXPECT_EQ(got, (std::set<Coord>{2, 51}));
  EXPECT_DOUBLE_EQ(best.cost, 4.0);  // 1+0+1 per side
}

}  // namespace
}  // namespace skc
