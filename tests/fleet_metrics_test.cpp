// Fleet-wide Prometheus exposition (src/skc/cluster/metrics.h,
// fleet_prometheus_text): the coordinator-side scrape that merges worker
// WORKER_STATS replies bucket-wise.  Structural tests pin the merge math
// (quantiles come from merged buckets, not averaged per-worker quantiles)
// and a byte-for-byte golden comparison pins the skc_cluster_* families —
// set SKC_REGEN_GOLDEN=1 to rewrite tests/golden/cluster_fleet.prom from
// the current renderer after a reviewed format change.
#include "skc/cluster/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "skc/net/frame.h"
#include "skc/obs/histogram.h"

namespace skc::cluster {
namespace {

/// A fully deterministic fleet: two answering workers with distinct
/// latency profiles and tenant rows, one dead one (scrape gap).
FleetStats golden_fleet() {
  FleetStats f;

  obs::LatencyHistogram submit0, query0, net0;
  for (std::int64_t v : {200, 450, 450, 900}) submit0.record_micros(v);
  for (std::int64_t v : {30'000, 75'000}) query0.record_micros(v);
  for (std::int64_t v : {50, 80, 120}) net0.record_micros(v);

  FleetWorker w0;
  w0.id = 0;
  w0.address = "127.0.0.1:7001";
  w0.alive = true;
  w0.clock_offset_micros = -1500;
  w0.best_rtt_micros = 320;
  w0.stats.submit = net::HistogramWire::from(submit0.snapshot());
  w0.stats.query = net::HistogramWire::from(query0.snapshot());
  w0.stats.net_request = net::HistogramWire::from(net0.snapshot());
  w0.stats.trace_dropped_spans = 2;
  w0.stats.tenants.push_back({"", 500});
  w0.stats.tenants.push_back({"acme", 120});
  f.workers.push_back(std::move(w0));

  obs::LatencyHistogram submit1, query1, checkpoint1;
  for (std::int64_t v : {600, 1'200}) submit1.record_micros(v);
  for (std::int64_t v : {220'000}) query1.record_micros(v);
  for (std::int64_t v : {1'500'000}) checkpoint1.record_micros(v);

  FleetWorker w1;
  w1.id = 1;
  w1.address = "127.0.0.1:7002";
  w1.alive = true;
  w1.clock_offset_micros = 4200;
  w1.best_rtt_micros = 510;
  w1.stats.submit = net::HistogramWire::from(submit1.snapshot());
  w1.stats.query = net::HistogramWire::from(query1.snapshot());
  w1.stats.checkpoint = net::HistogramWire::from(checkpoint1.snapshot());
  w1.stats.trace_dropped_spans = 0;
  w1.stats.tenants.push_back({"", 75});
  f.workers.push_back(std::move(w1));

  FleetWorker w2;  // never heartbeated: offsets unset, stats empty
  w2.id = 2;
  w2.address = "127.0.0.1:7003";
  w2.alive = false;
  f.workers.push_back(std::move(w2));

  return f;
}

TEST(FleetMetrics, MatchesGoldenFile) {
  const std::string path =
      std::string(SKC_GOLDEN_DIR) + "/cluster_fleet.prom";
  const std::string rendered = fleet_prometheus_text(golden_fleet());
  if (std::getenv("SKC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (SKC_REGEN_GOLDEN=1 regenerates it)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(rendered, golden.str())
      << "fleet exposition drifted from " << path
      << " — if intentional, rerun with SKC_REGEN_GOLDEN=1 and review";
}

TEST(FleetMetrics, QuantilesComeFromMergedBucketsNotAveragedQuantiles) {
  // Worker 0: nine fast queries.  Worker 1: one slow one.  The fleet p50
  // must sit in the fast bucket (the merged distribution's median), far
  // from the ~mean an average of per-worker medians would produce.
  obs::LatencyHistogram fast, slow;
  for (int i = 0; i < 9; ++i) fast.record_micros(1'000);
  slow.record_micros(1'000'000);

  FleetStats f;
  FleetWorker w0;
  w0.id = 0;
  w0.alive = true;
  w0.stats.query = net::HistogramWire::from(fast.snapshot());
  f.workers.push_back(std::move(w0));
  FleetWorker w1;
  w1.id = 1;
  w1.alive = true;
  w1.stats.query = net::HistogramWire::from(slow.snapshot());
  f.workers.push_back(std::move(w1));

  obs::HistogramSnapshot merged = fast.snapshot();
  merged.merge(slow.snapshot());
  EXPECT_EQ(merged.count, 10);
  EXPECT_LT(merged.p50_millis(), 10.0);
  EXPECT_GT(merged.p999_millis(), 100.0);

  const std::string text = fleet_prometheus_text(f);
  char want[96];
  std::snprintf(want, sizeof(want),
                "skc_cluster_op_latency_quantile_millis{op=\"query\","
                "q=\"0.5\"} %.6g",
                merged.p50_millis());
  EXPECT_NE(text.find(want), std::string::npos) << text;
  // The merged histogram's count is the sum across workers.
  EXPECT_NE(text.find("skc_cluster_op_latency_fleet_seconds_count{"
                      "op=\"query\"} 10"),
            std::string::npos);
}

TEST(FleetMetrics, DeadWorkersScrapeAsDownWithSentinelOffsets) {
  const std::string text = fleet_prometheus_text(golden_fleet());
  EXPECT_NE(text.find("skc_cluster_worker_up{worker=\"0\","
                      "address=\"127.0.0.1:7001\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("skc_cluster_worker_up{worker=\"2\","
                      "address=\"127.0.0.1:7003\"} 0"),
            std::string::npos);
  // -1 RTT = "no timed probe yet" (documented sentinel, scrapers filter it).
  EXPECT_NE(text.find("skc_cluster_worker_heartbeat_rtt_micros{worker=\"2\"}"
                      " -1"),
            std::string::npos);
  EXPECT_NE(text.find("skc_cluster_worker_clock_offset_micros{worker=\"0\"}"
                      " -1500"),
            std::string::npos);
  // Per-worker and per-tenant label sets from the tenant rows.
  EXPECT_NE(text.find("skc_cluster_tenant_events_total{worker=\"0\","
                      "tenant=\"acme\"} 120"),
            std::string::npos);
  EXPECT_NE(text.find("skc_cluster_tenant_events_total{worker=\"1\","
                      "tenant=\"\"} 75"),
            std::string::npos);
}

TEST(FleetMetrics, EveryLineIsCommentOrSample) {
  const std::string text = fleet_prometheus_text(golden_fleet());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    EXPECT_EQ(line.rfind("skc_cluster_", 0), 0u) << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

}  // namespace
}  // namespace skc::cluster
