#include "skc/sketch/point_store.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace skc {
namespace {

TEST(CellPointStore, RoundTripsPointsPerCell) {
  Rng rng(1);
  HierarchicalGrid grid(2, 8, rng);
  PointStoreConfig cfg;
  CellPointStore store(grid, 4, cfg);
  Rng prng(2);
  PointSet pts = testutil::random_points(2, 256, 100, prng);
  for (PointIndex i = 0; i < pts.size(); ++i) store.update(pts[i], +1);

  PointSet recovered(2);
  for (PointIndex i = 0; i < pts.size(); ++i) {
    const CellKey key = grid.cell_of(pts[i], 4);
    const auto cp = store.cell(key);
    ASSERT_TRUE(cp.has_value());
    EXPECT_TRUE(cp->complete);
  }
  for (const auto& [key, cp] : store.all_cells()) {
    recovered.append(cp.points);
  }
  EXPECT_EQ(testutil::canonical_multiset(recovered), testutil::canonical_multiset(pts));
}

TEST(CellPointStore, DeletionsCancelExactly) {
  Rng rng(3);
  HierarchicalGrid grid(2, 6, rng);
  PointStoreConfig cfg;
  CellPointStore store(grid, 3, cfg);
  PointSet p(2);
  p.push_back({5, 5});
  store.update(p[0], +1);
  store.update(p[0], +1);
  store.update(p[0], -1);
  const auto cp = store.cell(grid.cell_of(p[0], 3));
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->net_count, 1);
  EXPECT_EQ(cp->points.size(), 1);
}

TEST(CellPointStore, WatermarkEvictsHeavyCells) {
  // Zero shift so cell membership is deterministic: level-2 cells have side
  // 16 anchored at 0, so x in [17, 31] shares one cell and 60..61 another.
  HierarchicalGrid grid(2, 6, std::vector<Coord>{0, 0});
  PointStoreConfig cfg;
  cfg.watermark = 10;
  CellPointStore store(grid, 2, cfg);
  // 20 points in one cell: evicted; 3 in another: kept.
  PointSet heavy(2);
  for (Coord x = 17; x <= 31; ++x) heavy.push_back({x, 17});
  for (Coord x = 17; x <= 21; ++x) heavy.push_back({x, 18});
  for (PointIndex i = 0; i < heavy.size(); ++i) store.update(heavy[i], +1);
  PointSet light(2);
  light.push_back({60, 60});
  light.push_back({61, 60});
  light.push_back({60, 61});
  for (PointIndex i = 0; i < light.size(); ++i) store.update(light[i], +1);

  const CellKey heavy_cell = grid.cell_of(heavy[0], 2);
  const CellKey light_cell = grid.cell_of(light[0], 2);
  ASSERT_NE(heavy_cell, light_cell);

  const auto hc = store.cell(heavy_cell);
  ASSERT_TRUE(hc.has_value());
  EXPECT_FALSE(hc->complete);
  EXPECT_EQ(hc->net_count, 20);  // net count survives eviction
  EXPECT_TRUE(hc->points.empty());

  const auto lc = store.cell(light_cell);
  ASSERT_TRUE(lc.has_value());
  EXPECT_TRUE(lc->complete);
  EXPECT_EQ(lc->points.size(), 3);
}

TEST(CellPointStore, ExactModeNeverEvicts) {
  Rng rng(5);
  HierarchicalGrid grid(2, 6, rng);
  PointStoreConfig cfg;
  cfg.watermark = 4;
  cfg.exact = true;
  CellPointStore store(grid, 2, cfg);
  PointSet pts(2);
  for (Coord x = 1; x <= 30; ++x) pts.push_back({x, 1});
  for (PointIndex i = 0; i < pts.size(); ++i) store.update(pts[i], +1);
  for (const auto& [key, cp] : store.all_cells()) {
    EXPECT_TRUE(cp.complete);
  }
}

TEST(CellPointStore, LivePointCapKillsStructure) {
  Rng rng(6);
  HierarchicalGrid grid(2, 10, rng);
  PointStoreConfig cfg;
  cfg.watermark = 1000;
  cfg.max_live_points = 50;
  CellPointStore store(grid, 8, cfg);
  Rng prng(7);
  PointSet pts = testutil::random_points(2, 1024, 200, prng);
  for (PointIndex i = 0; i < pts.size(); ++i) store.update(pts[i], +1);
  EXPECT_TRUE(store.dead());
  EXPECT_TRUE(store.all_cells().empty());
  EXPECT_LT(store.memory_bytes(), 1000u);
}

TEST(CellPointStore, MergeMatchesConcatenation) {
  Rng rng(8);
  HierarchicalGrid grid(2, 7, rng);
  PointStoreConfig cfg;
  CellPointStore a(grid, 3, cfg);
  CellPointStore b(grid, 3, cfg);
  CellPointStore both(grid, 3, cfg);
  Rng prng(9);
  PointSet pa = testutil::random_points(2, 128, 50, prng);
  PointSet pb = testutil::random_points(2, 128, 50, prng);
  for (PointIndex i = 0; i < pa.size(); ++i) {
    a.update(pa[i], +1);
    both.update(pa[i], +1);
  }
  for (PointIndex i = 0; i < pb.size(); ++i) {
    b.update(pb[i], +1);
    both.update(pb[i], +1);
  }
  a.merge(b);
  PointSet merged(2), direct(2);
  for (const auto& [key, cp] : a.all_cells()) merged.append(cp.points);
  for (const auto& [key, cp] : both.all_cells()) direct.append(cp.points);
  EXPECT_EQ(testutil::canonical_multiset(merged), testutil::canonical_multiset(direct));
}

TEST(CellPointStore, ChurnLeavesOnlySurvivors) {
  Rng rng(10);
  HierarchicalGrid grid(2, 7, rng);
  PointStoreConfig cfg;
  cfg.watermark = 1 << 20;  // effectively off
  CellPointStore store(grid, 4, cfg);
  Rng prng(11);
  PointSet keep = testutil::random_points(2, 128, 40, prng);
  PointSet churn = testutil::random_points(2, 128, 60, prng);
  for (PointIndex i = 0; i < keep.size(); ++i) store.update(keep[i], +1);
  for (PointIndex i = 0; i < churn.size(); ++i) store.update(churn[i], +1);
  for (PointIndex i = 0; i < churn.size(); ++i) store.update(churn[i], -1);
  PointSet recovered(2);
  for (const auto& [key, cp] : store.all_cells()) {
    EXPECT_TRUE(cp.complete);
    recovered.append(cp.points);
  }
  EXPECT_EQ(testutil::canonical_multiset(recovered), testutil::canonical_multiset(keep));
}

}  // namespace
}  // namespace skc
