#include "skc/assign/halfspace.h"

#include <gtest/gtest.h>

#include "skc/assign/capacitated_assignment.h"
#include "skc/solve/cost.h"
#include "test_util.h"

namespace skc {
namespace {

TEST(HalfspaceValue, SignReflectsCloserCenter) {
  PointSet s(2);
  s.push_back({0, 0});   // p
  s.push_back({1, 0});   // z_i (closer)
  s.push_back({10, 0});  // z_j
  EXPECT_LT(halfspace_value(s[0], s[1], s[2], LrOrder{2.0}), 0.0);
  EXPECT_GT(halfspace_value(s[0], s[2], s[1], LrOrder{2.0}), 0.0);
}

TEST(HalfspaceLess, OrdersByValueThenAlphabetical) {
  PointSet s(1);
  s.push_back({1});
  s.push_back({2});
  PointSet z(1);
  z.push_back({0});
  z.push_back({10});
  // val increases with coordinate toward z_j? For z_i = 0, z_j = 10:
  // val(x) = x^2 - (10-x)^2 = 20x - 100, increasing in x.
  EXPECT_TRUE(halfspace_less(s[0], s[1], z[0], z[1], LrOrder{2.0}));
  EXPECT_FALSE(halfspace_less(s[1], s[0], z[0], z[1], LrOrder{2.0}));
  // Equal points: neither strictly less.
  EXPECT_FALSE(halfspace_less(s[0], s[0], z[0], z[1], LrOrder{2.0}));
}

class CanonicalizationTest : public ::testing::TestWithParam<double> {};

TEST_P(CanonicalizationTest, OptimalAssignmentBecomesConsistent) {
  const LrOrder r{GetParam()};
  Rng rng(static_cast<std::uint64_t>(17 + static_cast<int>(GetParam() * 10)));
  for (int trial = 0; trial < 8; ++trial) {
    PointSet pts = testutil::random_points(2, 64, 12, rng);
    PointSet centers = testutil::random_points(2, 64, 3, rng);
    const WeightedPointSet w = WeightedPointSet::unit(pts);
    const auto opt = optimal_capacitated_assignment(w, centers, 4.0, r);
    ASSERT_TRUE(opt.feasible);

    std::vector<CenterIndex> assignment = opt.assignment;
    const AssignmentEval before = evaluate_assignment(w, centers, r, assignment);
    canonicalize_assignment(pts, centers, r, assignment);
    const AssignmentEval after = evaluate_assignment(w, centers, r, assignment);

    EXPECT_TRUE(is_halfspace_consistent(pts, centers, r, assignment));
    // Cost never increases; sizes are preserved exactly.
    EXPECT_LE(after.cost, before.cost + 1e-6);
    EXPECT_EQ(after.loads, before.loads);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, CanonicalizationTest, ::testing::Values(1.0, 2.0, 3.0));

TEST(Canonicalization, FixesAManufacturedInversion) {
  // Two centers on a line; assign the far point to the near center and vice
  // versa — one switch must fix it.
  PointSet pts(1);
  pts.push_back({1});
  pts.push_back({9});
  PointSet centers(1);
  centers.push_back({0});
  centers.push_back({10});
  std::vector<CenterIndex> assignment = {1, 0};  // inverted
  EXPECT_FALSE(is_halfspace_consistent(pts, centers, LrOrder{2.0}, assignment));
  const std::int64_t switches =
      canonicalize_assignment(pts, centers, LrOrder{2.0}, assignment);
  EXPECT_EQ(switches, 1);
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(assignment[1], 1);
}

TEST(Canonicalization, ConsistentInputUntouched) {
  PointSet pts(1);
  pts.push_back({1});
  pts.push_back({9});
  PointSet centers(1);
  centers.push_back({0});
  centers.push_back({10});
  std::vector<CenterIndex> assignment = {0, 1};
  EXPECT_EQ(canonicalize_assignment(pts, centers, LrOrder{2.0}, assignment), 0);
}

TEST(AssignmentHalfspaces, RegionsRecoverTheAssignment) {
  Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    PointSet pts = testutil::random_points(2, 128, 15, rng);
    PointSet centers = testutil::random_points(2, 128, 3, rng);
    const WeightedPointSet w = WeightedPointSet::unit(pts);
    const auto opt = optimal_capacitated_assignment(w, centers, 5.0, LrOrder{2.0});
    ASSERT_TRUE(opt.feasible);
    std::vector<CenterIndex> assignment = opt.assignment;
    canonicalize_assignment(pts, centers, LrOrder{2.0}, assignment);
    const auto hs =
        AssignmentHalfspaces::from_assignment(pts, centers, LrOrder{2.0}, assignment);
    // Every fitting point must land in its own cluster's region (value ties
    // aside, which random integer data avoids almost surely).
    int mismatches = 0;
    for (PointIndex i = 0; i < pts.size(); ++i) {
      if (hs.region_of(pts[i]) != assignment[static_cast<std::size_t>(i)]) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0);
  }
}

TEST(AssignmentHalfspaces, EveryPointGetsARegionWithNonemptyClusters) {
  Rng rng(29);
  PointSet pts = testutil::random_points(2, 64, 12, rng);
  PointSet centers = testutil::random_points(2, 64, 3, rng);
  const WeightedPointSet w = WeightedPointSet::unit(pts);
  const auto opt = optimal_capacitated_assignment(w, centers, 4.0, LrOrder{2.0});
  ASSERT_TRUE(opt.feasible);
  std::vector<CenterIndex> assignment = opt.assignment;
  canonicalize_assignment(pts, centers, LrOrder{2.0}, assignment);
  const auto hs =
      AssignmentHalfspaces::from_assignment(pts, centers, LrOrder{2.0}, assignment);
  // Probe fresh random points: with all clusters nonempty and thresholds
  // finite, R_0 should be rare (region_of can still return it on exact
  // boundary ties).
  Rng prng(31);
  PointSet probes = testutil::random_points(2, 64, 200, prng);
  int r0 = 0;
  for (PointIndex i = 0; i < probes.size(); ++i) {
    if (hs.region_of(probes[i]) == kUnassigned) ++r0;
  }
  EXPECT_LE(r0, 10);
}

TEST(AssignmentHalfspaces, EmptyClusterRegionIsEmpty) {
  PointSet pts(1);
  pts.push_back({1});
  pts.push_back({2});
  PointSet centers(1);
  centers.push_back({0});
  centers.push_back({100});
  std::vector<CenterIndex> assignment = {0, 0};  // cluster 1 empty
  const auto hs =
      AssignmentHalfspaces::from_assignment(pts, centers, LrOrder{2.0}, assignment);
  PointSet probes(1);
  for (Coord x = 1; x <= 120; x += 7) probes.push_back({x});
  for (PointIndex i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(hs.region_of(probes[i]), 0);
  }
}

}  // namespace
}  // namespace skc
