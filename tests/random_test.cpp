#include "skc/common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace skc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(3);
  std::vector<int> hist(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++hist[static_cast<std::size_t>(v)];
  }
  for (int h : hist) {
    EXPECT_NEAR(h, trials / 10, trials / 100);  // within 10% of expectation
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng base(123);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
  // Forks are deterministic functions of (seed, stream).
  Rng a2 = Rng(123).fork(0);
  Rng a3 = Rng(123).fork(0);
  EXPECT_EQ(a2.next(), a3.next());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(77);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_NE(splitmix64(s2), first);  // state advanced
}

}  // namespace
}  // namespace skc
