#include "skc/assign/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "skc/assign/construct.h"
#include "skc/coreset/offline.h"
#include "skc/geometry/metric.h"
#include "skc/solve/capacitated_kmeans.h"
#include "skc/solve/cost.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

struct Fixture {
  PointSet points;
  CoresetParams params;
  Coreset coreset;
  PointSet centers;
  double t = 0.0;

  static Fixture make(int n, int k, std::uint64_t seed) {
    Fixture f;
    Rng rng(seed);
    MixtureConfig cfg;
    cfg.dim = 2;
    cfg.log_delta = 9;
    cfg.clusters = k;
    cfg.n = n;
    cfg.spread = 0.02;
    cfg.skew = 1.3;
    f.points = gaussian_mixture(cfg, rng);
    f.params = CoresetParams::practical(k, LrOrder{2.0}, 0.3, 0.3);
    const OfflineBuildResult built = build_offline_coreset(f.points, f.params, 9);
    EXPECT_TRUE(built.ok);
    f.coreset = built.coreset;
    f.t = tight_capacity(static_cast<double>(n), k) * 1.1;
    Rng solver_rng(seed + 1);
    const CapacitatedSolution sol = capacitated_kmeans(
        f.coreset.points, k,
        f.t * f.coreset.total_weight() / static_cast<double>(n), LrOrder{2.0},
        CapacitatedSolverOptions{}, solver_rng);
    EXPECT_TRUE(sol.feasible);
    f.centers = sol.centers;
    return f;
  }
};

TEST(AssignmentPlan, CompilesAndClassifiesEveryPoint) {
  Fixture f = Fixture::make(1500, 3, 21);
  const AssignmentPlan plan(f.params, 9, f.coreset, f.centers, f.t,
                            static_cast<double>(f.points.size()));
  ASSERT_TRUE(plan.ok());
  std::vector<double> loads(3, 0.0);
  PointIndex transferred = 0;
  for (PointIndex i = 0; i < f.points.size(); ++i) {
    bool used_transfer = false;
    const CenterIndex c = plan.classify(f.points[i], &used_transfer);
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 3);
    loads[static_cast<std::size_t>(c)] += 1.0;
    transferred += used_transfer ? 1 : 0;
  }
  // Most points go through the half-space transfer, and the load stays in
  // the (1 + O(eta)) envelope.
  EXPECT_GT(transferred, f.points.size() / 2);
  EXPECT_LE(*std::max_element(loads.begin(), loads.end()), 1.8 * f.t);
}

TEST(AssignmentPlan, LoadBeatsNearestCenterOnSkewedData) {
  Fixture f = Fixture::make(2500, 3, 23);
  const AssignmentPlan plan(f.params, 9, f.coreset, f.centers, f.t,
                            static_cast<double>(f.points.size()));
  ASSERT_TRUE(plan.ok());
  std::vector<double> plan_loads(3, 0.0), naive_loads(3, 0.0);
  for (PointIndex i = 0; i < f.points.size(); ++i) {
    plan_loads[static_cast<std::size_t>(plan.classify(f.points[i]))] += 1.0;
    naive_loads[static_cast<std::size_t>(
        nearest_center(f.points[i], f.centers, LrOrder{2.0}).index)] += 1.0;
  }
  const double plan_max = *std::max_element(plan_loads.begin(), plan_loads.end());
  const double naive_max = *std::max_element(naive_loads.begin(), naive_loads.end());
  if (naive_max > 1.25 * f.t) {
    EXPECT_LT(plan_max, naive_max);
  }
  EXPECT_LE(plan_max, 1.6 * f.t);
}

TEST(AssignmentPlan, CompactFootprint) {
  Fixture f = Fixture::make(12000, 4, 29);
  const AssignmentPlan plan(f.params, 9, f.coreset, f.centers, f.t, 12000.0);
  ASSERT_TRUE(plan.ok());
  const std::size_t raw = static_cast<std::size_t>(f.points.size()) * 2 * sizeof(Coord);
  // The plan must be far smaller than the data it classifies (its size is
  // tied to heavy cells + parts + k^2 thresholds, not to n).
  EXPECT_LT(plan.memory_bytes(), raw / 4);
}

TEST(AssignmentPlan, DeterministicClassification) {
  Fixture f = Fixture::make(1000, 3, 31);
  const AssignmentPlan a(f.params, 9, f.coreset, f.centers, f.t, 1000.0);
  const AssignmentPlan b(f.params, 9, f.coreset, f.centers, f.t, 1000.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (PointIndex i = 0; i < f.points.size(); i += 7) {
    EXPECT_EQ(a.classify(f.points[i]), b.classify(f.points[i]));
  }
}

TEST(AssignmentPlan, AgreesWithBatchConstructionOnLoads) {
  // The plan and assign_via_coreset use slightly different part information
  // (plan: coreset-estimated; batch: exact partition of Q), so assignments
  // need not match pointwise — but their load profiles must be close.
  Fixture f = Fixture::make(2000, 3, 37);
  const AssignmentPlan plan(f.params, 9, f.coreset, f.centers, f.t, 2000.0);
  ASSERT_TRUE(plan.ok());
  const FullAssignment batch =
      assign_via_coreset(f.points, f.params, 9, f.coreset, f.centers, f.t);
  ASSERT_TRUE(batch.feasible);
  std::vector<double> plan_loads(3, 0.0);
  for (PointIndex i = 0; i < f.points.size(); ++i) {
    plan_loads[static_cast<std::size_t>(plan.classify(f.points[i]))] += 1.0;
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(plan_loads[static_cast<std::size_t>(c)],
                batch.loads[static_cast<std::size_t>(c)],
                0.25 * static_cast<double>(f.points.size()));
  }
}

}  // namespace
}  // namespace skc
