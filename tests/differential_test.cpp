// Differential property tests: the sketch-mode streaming pipeline against
// its exact-mode twin across random seeds and stream shapes.  Sketch mode
// may accept a coarser o (CountMin noise only ever pushes upward), but the
// result must stay structurally sound: comparable total weight, integral
// weights, subset-of-input points.
#include <gtest/gtest.h>

#include <set>

#include "skc/coreset/streaming.h"
#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

struct DiffCase {
  std::uint64_t seed;
  double delete_fraction;  // extra points relative to survivors
  bool adversarial;
};

class SketchVsExactTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(SketchVsExactTest, SketchTracksExactReference) {
  const DiffCase c = GetParam();
  Rng rng(c.seed);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 3;
  cfg.n = 3000;
  cfg.spread = 0.02;
  cfg.skew = 1.2;
  const PointSet base = gaussian_mixture(cfg, rng);
  MixtureConfig extra_cfg = cfg;
  extra_cfg.n = static_cast<PointIndex>(c.delete_fraction * 3000.0);
  const PointSet extra = gaussian_mixture(extra_cfg, rng);
  ChurnConfig churn;
  churn.adversarial = c.adversarial;
  Rng srng(c.seed + 1);
  const Stream stream = extra.empty()
                            ? insertion_stream(base)
                            : churn_stream(base, extra, churn, srng);

  CoresetParams params = CoresetParams::practical(3, LrOrder{2.0}, 0.3, 0.3);
  params.seed = c.seed * 977 + 13;

  StreamingOptions sketch_opt;
  sketch_opt.log_delta = 10;
  sketch_opt.max_points = base.size() + extra.size();
  StreamingOptions exact_opt = sketch_opt;
  exact_opt.exact_storing = true;

  const StreamingResult sketch = build_streaming_coreset(stream, 2, params, sketch_opt);
  const StreamingResult exact = build_streaming_coreset(stream, 2, params, exact_opt);
  ASSERT_TRUE(exact.ok);
  ASSERT_TRUE(sketch.ok) << "sketch-mode failed where exact mode succeeded";

  // Sketch noise can only push the accepted o upward, by a bounded factor.
  EXPECT_GE(sketch.coreset.o, exact.coreset.o * 0.99);
  EXPECT_LE(sketch.coreset.o, exact.coreset.o * 64.0);

  // Structural soundness of the sketch-mode coreset.
  EXPECT_GT(sketch.coreset.points.size(), 30);
  EXPECT_TRUE(sketch.coreset.points.integral_weights());
  EXPECT_NEAR(sketch.coreset.total_weight(), 3000.0, 1800.0);
  std::set<std::vector<Coord>> input;
  for (PointIndex i = 0; i < base.size(); ++i) {
    const auto p = base[i];
    input.insert(std::vector<Coord>(p.begin(), p.end()));
  }
  for (PointIndex i = 0; i < extra.size(); ++i) {
    const auto p = extra[i];
    input.insert(std::vector<Coord>(p.begin(), p.end()));
  }
  for (PointIndex i = 0; i < sketch.coreset.points.size(); ++i) {
    const auto p = sketch.coreset.points.point(i);
    EXPECT_TRUE(input.count(std::vector<Coord>(p.begin(), p.end())))
        << "sketch coreset fabricated a point";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SketchVsExactTest,
    ::testing::Values(DiffCase{11, 0.0, false}, DiffCase{12, 0.0, false},
                      DiffCase{13, 0.5, false}, DiffCase{14, 0.5, false},
                      DiffCase{15, 0.8, true}, DiffCase{16, 0.3, true}),
    [](const ::testing::TestParamInfo<DiffCase>& param_info) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "seed%llu_del%d_%s",
                    static_cast<unsigned long long>(param_info.param.seed),
                    static_cast<int>(param_info.param.delete_fraction * 10),
                    param_info.param.adversarial ? "adv" : "rand");
      return std::string(buf);
    });

}  // namespace
}  // namespace skc
