// Scoped-span tracer (src/skc/obs/trace.h): the one-branch disabled path,
// bounded ring wraparound, per-thread attribution, and the chrome://tracing
// export.  The Tracer is a process-wide singleton, so every test starts
// from clear() and leaves tracing disabled.
#include "skc/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace skc::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }

  static std::vector<TaggedTraceEvent> events_named(const char* name) {
    std::vector<TaggedTraceEvent> out;
    for (const TaggedTraceEvent& e : Tracer::instance().events()) {
      if (std::string(e.event.name) == name) out.push_back(e);
    }
    return out;
  }
};

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    SKC_TRACE_SPAN("never");
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(events_named("never").empty());
}

TEST_F(TraceTest, EnabledSpanRecordsItsScope) {
  Tracer::instance().set_enabled(true);
  {
    SKC_TRACE_SPAN("timed");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto spans = events_named("timed");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].event.dur_micros, 1000);
  EXPECT_GE(spans[0].event.start_micros, 0);
}

TEST_F(TraceTest, SpanOpenAcrossDisableStillRecords) {
  // The entry decision governs: a span opened while enabled records even if
  // the flag flips before it closes (documented in Tracer::set_enabled).
  Tracer::instance().set_enabled(true);
  {
    SKC_TRACE_SPAN("straddler");
    Tracer::instance().set_enabled(false);
  }
  EXPECT_EQ(events_named("straddler").size(), 1u);
}

TEST_F(TraceTest, RingWrapsKeepingTheNewestSpans) {
  Tracer& tracer = Tracer::instance();
  const std::int64_t n = static_cast<std::int64_t>(kTraceRingCapacity) + 10;
  // Record with synthetic start stamps 0..n-1 so survivorship is checkable.
  for (std::int64_t i = 0; i < n; ++i) tracer.record("wrap", i, 1);

  const auto spans = events_named("wrap");
  EXPECT_EQ(spans.size(), kTraceRingCapacity);
  EXPECT_GE(tracer.total_recorded(), n);  // overwritten spans still counted
  std::int64_t min_start = n, max_start = -1;
  for (const TaggedTraceEvent& e : spans) {
    min_start = std::min(min_start, e.event.start_micros);
    max_start = std::max(max_start, e.event.start_micros);
  }
  // The 10 oldest spans were overwritten; the newest survive.
  EXPECT_EQ(min_start, 10);
  EXPECT_EQ(max_start, n - 1);
}

TEST_F(TraceTest, SpansCarryTheRecordingThread) {
  Tracer::instance().set_enabled(true);
  { SKC_TRACE_SPAN("owner-main"); }
  std::thread worker([] { SKC_TRACE_SPAN("owner-worker"); });
  worker.join();

  const auto main_spans = events_named("owner-main");
  const auto worker_spans = events_named("owner-worker");
  ASSERT_EQ(main_spans.size(), 1u);
  ASSERT_EQ(worker_spans.size(), 1u);
  EXPECT_NE(main_spans[0].tid, worker_spans[0].tid);
  EXPECT_GE(Tracer::instance().num_threads(), 2);
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreadsAllLand) {
  Tracer::instance().set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;  // < capacity: nothing may be dropped
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SKC_TRACE_SPAN("stress");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(events_named("stress").size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
}

TEST_F(TraceTest, RingOverwritesAreCountedAsDroppedSpans) {
  Tracer& tracer = Tracer::instance();
  const std::int64_t extra = 7;
  const std::int64_t n = static_cast<std::int64_t>(kTraceRingCapacity) + extra;
  for (std::int64_t i = 0; i < n; ++i) tracer.record("drop", i, 1);

  // Every overwrite is one dropped span, surfaced three ways: the counter
  // feeding skc_trace_dropped_spans_total, the dump's otherData, and (via
  // WORKER_STATS) the fleet scrape.
  EXPECT_EQ(tracer.total_dropped(), extra);
  EXPECT_EQ(tracer.total_recorded(), n);
  const std::string json = tracer.dump_chrome_json();
  EXPECT_NE(json.find("\"droppedSpans\":7"), std::string::npos) << json;

  tracer.clear();
  EXPECT_EQ(tracer.total_dropped(), 0);
}

TEST_F(TraceTest, NothingIsDroppedUnderCapacity) {
  Tracer& tracer = Tracer::instance();
  for (int i = 0; i < 100; ++i) tracer.record("fits", i, 1);
  EXPECT_EQ(tracer.total_dropped(), 0);
  EXPECT_EQ(tracer.total_recorded(), 100);
}

TEST_F(TraceTest, RebaseRewritesPidAndShiftsTimestamps) {
  Tracer& tracer = Tracer::instance();
  tracer.record("shiftme", 100, 9);
  const std::string dump = tracer.dump_chrome_json();

  const std::string rebased = rebase_trace_events(dump, /*pid=*/4,
                                                  /*offset_micros=*/-1500);
  EXPECT_NE(rebased.find("\"pid\":4"), std::string::npos) << rebased;
  EXPECT_EQ(rebased.find("\"pid\":1"), std::string::npos) << rebased;
  EXPECT_NE(rebased.find("\"ts\":-1400"), std::string::npos)
      << "100 - 1500 = -1400: " << rebased;
  EXPECT_NE(rebased.find("\"dur\":9"), std::string::npos);
  // The items are bracket-free so lanes can be comma-joined directly.
  EXPECT_EQ(rebased.front(), '{');
  EXPECT_EQ(rebased.back(), '}');
}

TEST_F(TraceTest, RebaseOfAnEmptyDumpIsEmpty) {
  EXPECT_EQ(rebase_trace_events(Tracer::instance().dump_chrome_json(), 3, 50),
            "");
  EXPECT_EQ(rebase_trace_events("not json at all", 3, 50), "");
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  Tracer& tracer = Tracer::instance();
  tracer.record("jsonspan", 42, 7);
  const std::string json = tracer.dump_chrome_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"jsonspan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":42"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":7"), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.dump_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedSpans\":0,"
            "\"totalRecorded\":0},\"traceEvents\":[]}");
  EXPECT_EQ(tracer.total_recorded(), 0);
}

}  // namespace
}  // namespace skc::obs
