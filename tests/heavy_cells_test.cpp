#include "skc/partition/heavy_cells.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_map>

#include "skc/stream/generators.h"
#include "test_util.h"

namespace skc {
namespace {

PartitionParams small_params(int k = 4, double r = 2.0) {
  PartitionParams p;
  p.k = k;
  p.r = LrOrder{r};
  p.heavy_bound_const = 8.0;
  return p;
}

TEST(PartThreshold, ScalesWithOAndLevel) {
  Rng rng(1);
  HierarchicalGrid grid(2, 8, rng);
  const PartitionParams params = small_params();
  const double t1 = part_threshold(grid, params, 3, 1000.0);
  const double t2 = part_threshold(grid, params, 3, 2000.0);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
  // Finer levels have smaller cells, hence larger thresholds for r > 0.
  EXPECT_GT(part_threshold(grid, params, 4, 1000.0), t1);
}

TEST(DimTerm, MatchesFormula) {
  EXPECT_DOUBLE_EQ(dim_term(4, LrOrder{2.0}), 64.0);   // 4^3
  EXPECT_DOUBLE_EQ(dim_term(9, LrOrder{1.0}), 27.0);   // 9^1.5
}

TEST(PartitionOffline, PartsCoverAllPointsDisjointly) {
  Rng rng(2);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 8;
  cfg.clusters = 3;
  cfg.n = 600;
  PointSet pts = gaussian_mixture(cfg, rng);
  HierarchicalGrid grid(2, 8, rng);

  // o roughly at the clustering cost scale: use a mid-range guess where the
  // partition is non-degenerate.
  const OfflinePartition partition =
      partition_offline(pts, grid, small_params(3), 1e6);
  ASSERT_FALSE(partition.fail);

  std::vector<int> covered(static_cast<std::size_t>(pts.size()), 0);
  for (const Part& part : partition.parts) {
    for (PointIndex p : part.points) covered[static_cast<std::size_t>(p)] += 1;
  }
  // Every point in exactly one part (root is heavy at this o).
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](int c) { return c == 1; }));
}

TEST(PartitionOffline, LargeOCollapsesToOnePart) {
  // With an enormous o every threshold is huge: only the root can be heavy,
  // so all points land in the single level-0 part under the root.
  Rng rng(3);
  PointSet pts = testutil::random_points(2, 200, 100, rng);
  HierarchicalGrid grid(2, 8, rng);
  const OfflinePartition partition =
      partition_offline(pts, grid, small_params(), 1e18);
  ASSERT_FALSE(partition.fail);
  // Root not heavy for absurdly large o => no parts at all; or exactly the
  // level-0 parts under the root.  Either way no deep heavy cells.
  EXPECT_LE(partition.total_heavy, 1);
}

TEST(PartitionOffline, TinyOFails) {
  // o = 1 makes every cell heavy on clustered data -> heavy-cell explosion.
  Rng rng(4);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 10;
  cfg.clusters = 4;
  cfg.n = 4000;
  cfg.spread = 0.05;
  PointSet pts = gaussian_mixture(cfg, rng);
  HierarchicalGrid grid(2, 10, rng);
  const OfflinePartition partition = partition_offline(pts, grid, small_params(), 1.0);
  EXPECT_TRUE(partition.fail);
}

TEST(PartitionOffline, HeavyCountsAreConsistent) {
  Rng rng(5);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 8;
  cfg.clusters = 2;
  cfg.n = 500;
  PointSet pts = gaussian_mixture(cfg, rng);
  HierarchicalGrid grid(2, 8, rng);
  const OfflinePartition partition =
      partition_offline(pts, grid, small_params(2), 5e5);
  ASSERT_FALSE(partition.fail);
  const std::int64_t sum = std::accumulate(partition.heavy_per_level.begin(),
                                           partition.heavy_per_level.end(),
                                           std::int64_t{0});
  EXPECT_EQ(sum, partition.total_heavy);
}

TEST(PartitionOffline, PartsSitUnderHeavyParents) {
  Rng rng(6);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 8;
  cfg.clusters = 3;
  cfg.n = 800;
  PointSet pts = gaussian_mixture(cfg, rng);
  HierarchicalGrid grid(2, 8, rng);
  const OfflinePartition partition =
      partition_offline(pts, grid, small_params(3), 1e6);
  ASSERT_FALSE(partition.fail);
  for (const Part& part : partition.parts) {
    EXPECT_EQ(part.parent.level, part.level - 1);
    for (PointIndex p : part.points) {
      EXPECT_TRUE(grid.contains(part.parent, pts[p]));
    }
  }
}

TEST(MarkCells, AgreesWithOfflineOnExactCounts) {
  Rng rng(7);
  MixtureConfig cfg;
  cfg.dim = 2;
  cfg.log_delta = 7;
  cfg.clusters = 3;
  cfg.n = 700;
  PointSet pts = gaussian_mixture(cfg, rng);
  HierarchicalGrid grid(2, 7, rng);
  const PartitionParams params = small_params(3);
  const double o = 3e5;

  // Exact per-level cell counts (the estimates an ideal sketch would give).
  LevelEstimates estimates(static_cast<std::size_t>(grid.log_delta()));
  for (int level = 0; level < grid.log_delta(); ++level) {
    std::unordered_map<CellKey, double, CellKeyHash> counts;
    for (PointIndex i = 0; i < pts.size(); ++i) {
      counts[grid.cell_of(pts[i], level)] += 1.0;
    }
    for (auto& [cell, count] : counts) {
      estimates[static_cast<std::size_t>(level)].push_back(
          EstimatedCell{cell.index, count});
    }
  }

  const CellMarking marking =
      mark_cells(grid, params, o, estimates, static_cast<double>(pts.size()));
  const OfflinePartition partition = partition_offline(pts, grid, params, o);
  ASSERT_FALSE(marking.fail);
  ASSERT_FALSE(partition.fail);
  EXPECT_EQ(marking.total_heavy, partition.total_heavy);
  EXPECT_EQ(marking.heavy_per_level, partition.heavy_per_level);
}

TEST(MarkCells, NonHeavyRootBlocksEverything) {
  Rng rng(8);
  HierarchicalGrid grid(2, 6, rng);
  LevelEstimates estimates(static_cast<std::size_t>(grid.log_delta()));
  // A would-be-heavy level-0 cell, but the root (total) is below threshold.
  estimates[0].push_back(EstimatedCell{{0, 0}, 1e12});
  const CellMarking marking = mark_cells(grid, small_params(), 1e15, estimates, 1.0);
  ASSERT_FALSE(marking.fail);
  EXPECT_EQ(marking.total_heavy, 0);
}

TEST(HeavyCellsBound, GrowsWithKAndL) {
  const PartitionParams params = small_params(4);
  EXPECT_LT(heavy_cells_bound(params, 2, 6), heavy_cells_bound(params, 2, 12));
  PartitionParams bigger_k = params;
  bigger_k.k = 16;
  EXPECT_LT(heavy_cells_bound(params, 2, 8), heavy_cells_bound(bigger_k, 2, 8));
}

}  // namespace
}  // namespace skc
