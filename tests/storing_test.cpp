#include "skc/sketch/storing.h"

#include <gtest/gtest.h>

#include <map>

#include "test_util.h"

namespace skc {
namespace {

using CellMap = std::map<std::vector<std::int32_t>, std::int64_t>;

CellMap ground_truth_cells(const PointSet& pts, const HierarchicalGrid& grid,
                           int level) {
  CellMap out;
  for (PointIndex i = 0; i < pts.size(); ++i) {
    const CellKey c = grid.cell_of(pts[i], level);
    out[std::vector<std::int32_t>(c.index.begin(), c.index.end())] += 1;
  }
  return out;
}

CellMap result_cells(const StoringResult& r) {
  CellMap out;
  for (const StoredCell& c : r.cells) out[c.index] += c.count;
  return out;
}

TEST(Storing, CellCountsMatchGroundTruth) {
  Rng rng(1);
  HierarchicalGrid grid(2, 8, rng);
  Rng prng(2);
  PointSet pts = testutil::random_points(2, 256, 60, prng);

  StoringConfig cfg;
  cfg.alpha = 128;
  Storing storing(grid, 3, cfg, 99);
  for (PointIndex i = 0; i < pts.size(); ++i) storing.update(pts[i], +1);

  const StoringResult r = storing.finalize();
  ASSERT_FALSE(r.fail) << r.fail_reason;
  EXPECT_EQ(result_cells(r), ground_truth_cells(pts, grid, 3));
}

TEST(Storing, DeletionsAreExact) {
  Rng rng(3);
  HierarchicalGrid grid(3, 6, rng);
  Rng prng(4);
  PointSet keep = testutil::random_points(3, 64, 20, prng);
  PointSet churn = testutil::random_points(3, 64, 40, prng);

  StoringConfig cfg;
  cfg.alpha = 128;
  Storing storing(grid, 2, cfg, 7);
  for (PointIndex i = 0; i < keep.size(); ++i) storing.update(keep[i], +1);
  for (PointIndex i = 0; i < churn.size(); ++i) storing.update(churn[i], +1);
  for (PointIndex i = 0; i < churn.size(); ++i) storing.update(churn[i], -1);

  const StoringResult r = storing.finalize();
  ASSERT_FALSE(r.fail) << r.fail_reason;
  EXPECT_EQ(result_cells(r), ground_truth_cells(keep, grid, 2));
}

TEST(Storing, PointRecoveryReturnsActualPoints) {
  Rng rng(5);
  HierarchicalGrid grid(2, 8, rng);
  Rng prng(6);
  PointSet pts = testutil::random_points(2, 256, 30, prng);

  StoringConfig cfg;
  cfg.alpha = 64;
  cfg.beta = 4;
  Storing storing(grid, 4, cfg, 13);
  for (PointIndex i = 0; i < pts.size(); ++i) storing.update(pts[i], +1);

  const StoringResult r = storing.finalize();
  ASSERT_FALSE(r.fail) << r.fail_reason;
  PointSet recovered(2);
  for (const StoredCell& c : r.cells) {
    EXPECT_TRUE(c.points_complete);
    recovered.append(c.points);
  }
  EXPECT_EQ(testutil::canonical_multiset(recovered), testutil::canonical_multiset(pts));
}

TEST(Storing, FailsWhenCellsExceedAlpha) {
  Rng rng(7);
  HierarchicalGrid grid(2, 10, rng);
  Rng prng(8);
  PointSet pts = testutil::random_points(2, 1024, 400, prng);

  StoringConfig cfg;
  cfg.alpha = 4;  // tiny budget
  Storing storing(grid, 9, cfg, 21);
  for (PointIndex i = 0; i < pts.size(); ++i) storing.update(pts[i], +1);
  EXPECT_TRUE(storing.finalize().fail);
}

TEST(Storing, MergeMatchesConcatenatedStream) {
  Rng rng(9);
  HierarchicalGrid grid(2, 7, rng);
  Rng prng(10);
  PointSet a = testutil::random_points(2, 128, 25, prng);
  PointSet b = testutil::random_points(2, 128, 25, prng);

  StoringConfig cfg;
  cfg.alpha = 128;
  Storing sa(grid, 3, cfg, 33);
  Storing sb(grid, 3, cfg, 33);
  Storing both(grid, 3, cfg, 33);
  for (PointIndex i = 0; i < a.size(); ++i) {
    sa.update(a[i], +1);
    both.update(a[i], +1);
  }
  for (PointIndex i = 0; i < b.size(); ++i) {
    sb.update(b[i], +1);
    both.update(b[i], +1);
  }
  sa.merge(sb);
  const StoringResult merged = sa.finalize();
  const StoringResult direct = both.finalize();
  ASSERT_FALSE(merged.fail);
  ASSERT_FALSE(direct.fail);
  EXPECT_EQ(result_cells(merged), result_cells(direct));
}

TEST(Storing, DuplicatePointsCountWithMultiplicity) {
  Rng rng(11);
  HierarchicalGrid grid(2, 5, rng);
  PointSet p(2);
  p.push_back({5, 5});

  StoringConfig cfg;
  cfg.alpha = 8;
  cfg.beta = 8;
  Storing storing(grid, 2, cfg, 55);
  for (int i = 0; i < 5; ++i) storing.update(p[0], +1);
  storing.update(p[0], -1);

  const StoringResult r = storing.finalize();
  ASSERT_FALSE(r.fail) << r.fail_reason;
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_EQ(r.cells[0].count, 4);
  EXPECT_EQ(r.cells[0].points.size(), 4);
  EXPECT_TRUE(r.cells[0].points_complete);
}

TEST(Storing, EventsCounterTracksUpdates) {
  Rng rng(12);
  HierarchicalGrid grid(1, 4, rng);
  StoringConfig cfg;
  Storing storing(grid, 1, cfg, 1);
  PointSet p(1);
  p.push_back({3});
  storing.update(p[0], +1);
  storing.update(p[0], -1);
  EXPECT_EQ(storing.events(), 2);
}

TEST(Storing, MemoryIndependentOfStreamLength) {
  Rng rng(13);
  HierarchicalGrid grid(2, 8, rng);
  StoringConfig cfg;
  cfg.alpha = 32;
  Storing storing(grid, 4, cfg, 2);
  const std::size_t before = storing.memory_bytes();
  Rng prng(14);
  PointSet pts = testutil::random_points(2, 256, 500, prng);
  for (PointIndex i = 0; i < pts.size(); ++i) storing.update(pts[i], +1);
  EXPECT_EQ(storing.memory_bytes(), before);
}

}  // namespace
}  // namespace skc
